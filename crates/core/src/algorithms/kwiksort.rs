//! KwikSort (§3.2, [Ailon, Charikar, Newman 2008]), tie-adapted per §4.1.2.
//!
//! The divide-and-conquer 11/7-approximation: pick a random pivot and
//! assign every other element to the side that minimizes its pairwise
//! disagreement with the pivot, then recurse. The §4.1.2 adaptation adds a
//! third choice — being *tied with the pivot* — whose cost is the
//! (un)tying disagreement; this changes the complexity by a constant
//! factor only.
//!
//! Randomized: wrap in [`super::BestOf`] for the paper's `KwikSortMin`.

use super::{AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::element::Element;
use crate::pairs::PairTable;
use crate::ranking::Ranking;
use rand::Rng;

/// Tie-adapted KwikSort.
#[derive(Debug, Clone, Copy, Default)]
pub struct KwikSort;

fn kwik(
    mut elems: Vec<Element>,
    pairs: &PairTable,
    rng: &mut rand::rngs::StdRng,
    out: &mut Vec<Vec<Element>>,
) {
    match elems.len() {
        0 => return,
        1 => {
            out.push(elems);
            return;
        }
        _ => {}
    }
    let pivot = elems.swap_remove(rng.random_range(0..elems.len()));
    let mut before = Vec::new();
    let mut tied = vec![pivot];
    let mut after = Vec::new();
    for e in elems {
        let cb = pairs.cost_before(e, pivot);
        let ct = pairs.cost_tied(e, pivot);
        let ca = pairs.cost_before(pivot, e);
        let min = cb.min(ct).min(ca);
        // Random tie-breaking between equal-cost choices keeps the
        // algorithm's randomized character (and gives KwikSortMin diversity).
        let mut choices: [Option<u8>; 3] = [None; 3];
        let mut k = 0;
        if cb == min {
            choices[k] = Some(0);
            k += 1;
        }
        if ct == min {
            choices[k] = Some(1);
            k += 1;
        }
        if ca == min {
            choices[k] = Some(2);
            k += 1;
        }
        match choices[rng.random_range(0..k)].expect("at least one choice") {
            0 => before.push(e),
            1 => tied.push(e),
            _ => after.push(e),
        }
    }
    kwik(before, pairs, rng, out);
    out.push(tied);
    kwik(after, pairs, rng, out);
}

impl ConsensusAlgorithm for KwikSort {
    fn name(&self) -> String {
        "KwikSort".to_owned()
    }

    fn produces_ties(&self) -> bool {
        true // §4.1.2: elements may be tied to the pivot
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        // One-shot kernel: too fast to stop midway, but the checkpoint
        // still records a pre-expired deadline or pending cancel so the
        // report's outcome is honest.
        let _ = ctx.checkpoint();
        let pairs = ctx.cost_matrix(data);
        let elems: Vec<Element> = (0..data.n() as u32).map(Element).collect();
        let mut out = Vec::new();
        kwik(elems, &pairs, &mut ctx.rng, &mut out);
        Ranking::from_buckets(out).expect("partition of the elements")
    }
}

/// The *original* two-way KwikSort, without the §4.1.2 tie adaptation —
/// kept as an ablation so the benefit of the third (tie) pivot branch can
/// be measured (see the `ablations` bench).
#[derive(Debug, Clone, Copy, Default)]
pub struct KwikSortNoTies;

fn kwik2(
    mut elems: Vec<Element>,
    pairs: &PairTable,
    rng: &mut rand::rngs::StdRng,
    out: &mut Vec<Vec<Element>>,
) {
    match elems.len() {
        0 => return,
        1 => {
            out.push(elems);
            return;
        }
        _ => {}
    }
    let pivot = elems.swap_remove(rng.random_range(0..elems.len()));
    let mut before = Vec::new();
    let mut after = Vec::new();
    for e in elems {
        let cb = pairs.cost_before(e, pivot);
        let ca = pairs.cost_before(pivot, e);
        let go_before = match cb.cmp(&ca) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => rng.random_bool(0.5),
        };
        if go_before {
            before.push(e);
        } else {
            after.push(e);
        }
    }
    kwik2(before, pairs, rng, out);
    out.push(vec![pivot]);
    kwik2(after, pairs, rng, out);
}

impl ConsensusAlgorithm for KwikSortNoTies {
    fn name(&self) -> String {
        "KwikSortNoTies".to_owned()
    }

    fn produces_ties(&self) -> bool {
        false
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        let pairs = ctx.cost_matrix(data);
        let elems: Vec<Element> = (0..data.n() as u32).map(Element).collect();
        let mut out = Vec::new();
        kwik2(elems, &pairs, &mut ctx.rng, &mut out);
        Ranking::from_buckets(out).expect("partition of the elements")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;
    use crate::score::kemeny_score;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    #[test]
    fn unanimous_permutations_recovered() {
        let d = data(&["[{3},{1},{0},{2}]", "[{3},{1},{0},{2}]"]);
        for seed in 0..5 {
            let r = KwikSort.run(&d, &mut AlgoContext::seeded(seed));
            assert_eq!(
                r,
                parse_ranking("[{3},{1},{0},{2}]").unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn unanimous_ties_preserved() {
        // Everyone ties {1,2}: tying them to each other is always the
        // cheapest pivot decision.
        let d = data(&["[{0},{1,2},{3}]", "[{0},{1,2},{3}]", "[{0},{1,2},{3}]"]);
        for seed in 0..10 {
            let r = KwikSort.run(&d, &mut AlgoContext::seeded(seed));
            assert_eq!(r, parse_ranking("[{0},{1,2},{3}]").unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn output_always_complete() {
        let d = data(&["[{2},{0,3},{1}]", "[{1},{3},{0,2}]", "[{0,1,2,3}]"]);
        for seed in 0..20 {
            let r = KwikSort.run(&d, &mut AlgoContext::seeded(seed));
            assert!(d.is_complete_ranking(&r), "seed {seed}");
        }
    }

    #[test]
    fn quality_reasonable_on_small_instance() {
        use crate::algorithms::exact::brute_force;
        let d = data(&["[{0},{1,2},{3}]", "[{1},{0},{3},{2}]", "[{0,3},{1},{2}]"]);
        let (opt, _) = brute_force(&d);
        let best = (0..20)
            .map(|s| kemeny_score(&KwikSort.run(&d, &mut AlgoContext::seeded(s)), &d))
            .min()
            .unwrap();
        // 11/7 bound holds for best-of(KwikSort, Pick-a-Perm) in
        // expectation; best-of-20 should land within 2× comfortably.
        assert!(best <= 2 * opt, "best {best} vs opt {opt}");
    }

    #[test]
    fn single_element() {
        let d = data(&["[{0}]"]);
        let r = KwikSort.run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r.n_elements(), 1);
    }

    #[test]
    fn no_ties_variant_outputs_permutations() {
        let d = data(&["[{0,1,2,3}]", "[{0},{1,2},{3}]"]);
        for seed in 0..10 {
            let r = KwikSortNoTies.run(&d, &mut AlgoContext::seeded(seed));
            assert!(r.is_permutation(), "seed {seed}");
            assert!(d.is_complete_ranking(&r));
        }
    }

    #[test]
    fn tie_adaptation_wins_on_tied_inputs() {
        // On unanimous ties, the adapted KwikSort pays nothing while the
        // 2-way original must untie everything.
        let d = data(&["[{0,1,2,3}]", "[{0,1,2,3}]", "[{0,1,2,3}]"]);
        let adapted = KwikSort.run(&d, &mut AlgoContext::seeded(0));
        let original = KwikSortNoTies.run(&d, &mut AlgoContext::seeded(0));
        assert!(kemeny_score(&adapted, &d) < kemeny_score(&original, &d));
    }
}
