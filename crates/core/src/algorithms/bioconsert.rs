//! BioConsert (§3.1, [Cohen-Boulakia, Denise, Hamel 2011]).
//!
//! The generalized-Kendall-τ local search that the paper finds best in the
//! very large majority of cases. Starting from a solution (each input
//! ranking in turn, keeping the best final result), it repeatedly applies
//! the two edit operations as long as the cost decreases:
//!
//! 1. remove an element from its bucket and place it into a **new bucket**
//!    at any position;
//! 2. move an element into an **existing bucket**.
//!
//! # Kernel notes
//!
//! * All `2k+1` destinations for one element are evaluated in `O(n)` via
//!   prefix/suffix sums over per-bucket cost aggregates; the aggregates
//!   come from **one sequential walk of the element's cost-matrix row**
//!   (`[cost_before, cost_tied]` interleaved; the "after" cost is derived
//!   as `2m − cb − ct`, see [`crate::pairs::row_cost_after`]) — no
//!   per-pair branching, no second row touched.
//! * Applying a move updates the `pos` (element → bucket index) map
//!   **incrementally**: only buckets whose index actually shifted — the
//!   contiguous range between the source and destination slots — are
//!   rewritten, instead of the seed's full `O(n)` rebuild per move.
//! * The multi-start loop (one start per input ranking) runs starts on
//!   parallel workers. `local_search` is deterministic per start and the
//!   best result is chosen by `(score, start index)`, so for
//!   **deadline-free** contexts the parallel run is bit-identical to the
//!   sequential one for any thread count — the property
//!   `tests/parallel_kernel_properties.rs` pins down. Under a wall-clock
//!   deadline both paths are best-effort: which sweeps finish before the
//!   cutoff depends on timing, so truncated results may differ between
//!   paths (and between runs), exactly as the seed's sequential
//!   truncation already depended on wall-clock.
//!
//! The cost matrix itself is the `O(n²)` memory footprint the paper
//! attributes to BioConsert (§3.1, §7.4); it is taken from the context's
//! shared cache, not rebuilt per start or per wrapper repeat.

use super::{AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::element::Element;
use crate::pairs::{row_cost_after, PairTable};
use crate::parallel;
use crate::ranking::Ranking;

/// BioConsert with configurable starting points.
#[derive(Debug, Clone, Default)]
pub struct BioConsert {
    /// Additional starting rankings beyond the dataset's own inputs
    /// (used by the ablation bench; normally empty).
    pub extra_starts: Vec<Ranking>,
    /// If `true`, skip the input rankings and use only `extra_starts`.
    pub only_extra_starts: bool,
    /// Force the sequential multi-start path (the parallel path is
    /// bit-identical; this exists for tests and timing baselines).
    pub force_sequential: bool,
}

/// A candidate destination for the element being moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Move {
    /// New singleton bucket inserted at slot `j` (before remaining bucket `j`).
    NewBucket(usize),
    /// Join remaining bucket `j`.
    IntoBucket(usize),
}

/// Steepest-descent local search from `start`; returns the refined ranking
/// and its score. Deterministic: uses no randomness, so the result is a
/// pure function of `(start, pairs)`.
pub(crate) fn local_search(
    start: &Ranking,
    pairs: &PairTable,
    ctx: &AlgoContext,
) -> (u64, Ranking) {
    let n = pairs.n();
    let m2 = 2 * pairs.m();
    let mut buckets: Vec<Vec<Element>> = start.buckets().map(|b| b.to_vec()).collect();
    let mut pos: Vec<usize> = vec![0; n];
    for (bi, b) in buckets.iter().enumerate() {
        for &e in b {
            pos[e.index()] = bi;
        }
    }
    let mut score = pairs.score(start);
    // The start itself is the run's first incumbent: a job cancelled
    // before any sweep completes still has a harvestable consensus.
    ctx.offer_incumbent(start, score);

    // Reusable per-sweep buffers (perf-book: keep workhorse collections).
    let mut ca: Vec<u64> = Vec::new(); // cost if e strictly after bucket i
    let mut cb: Vec<u64> = Vec::new(); // cost if e strictly before bucket i
    let mut ct: Vec<u64> = Vec::new(); // cost if e tied with bucket i

    let mut improved = true;
    while improved && ctx.checkpoint().is_continue() {
        improved = false;
        for id in 0..n {
            let e = Element(id as u32);
            let row = pairs.row(e);
            let cur_b = pos[id];
            let singleton = buckets[cur_b].len() == 1;

            // Per-bucket pair-cost sums with e removed; a singleton bucket
            // of e itself disappears from the remaining list. One pass over
            // e's interleaved row per bucket member — no other row needed.
            ca.clear();
            cb.clear();
            ct.clear();
            for (i, b) in buckets.iter().enumerate() {
                if i == cur_b && singleton {
                    continue;
                }
                let (mut sb, mut st, mut sa) = (0u64, 0u64, 0u64);
                for &f in b {
                    if f == e {
                        continue;
                    }
                    let fi = f.index();
                    sb += row[2 * fi] as u64;
                    st += row[2 * fi + 1] as u64;
                    sa += row_cost_after(row, m2, fi) as u64;
                }
                ca.push(sa);
                cb.push(sb);
                ct.push(st);
            }
            let k = ca.len();

            // cost of a new singleton at slot j:  Σ_{i<j} ca[i] + Σ_{i≥j} cb[i]
            // cost of joining bucket j:           Σ_{i<j} ca[i] + ct[j] + Σ_{i>j} cb[i]
            // One left-to-right walk with running prefix/suffix sums.
            let total_cb: u64 = cb.iter().sum();
            let mut pre_ca = 0u64;
            let mut suf_cb = total_cb;
            // Current placement corresponds to slot/bucket index `cur_b`
            // in the remaining list (buckets before cur_b are unchanged).
            let mut current_cost = u64::MAX;
            let mut best_cost = u64::MAX;
            let mut best_move = Move::NewBucket(0);
            for j in 0..=k {
                let new_cost = pre_ca + suf_cb;
                if new_cost < best_cost {
                    best_cost = new_cost;
                    best_move = Move::NewBucket(j);
                }
                if singleton && j == cur_b {
                    current_cost = new_cost;
                }
                if j < k {
                    let into_cost = pre_ca + ct[j] + (suf_cb - cb[j]);
                    if into_cost < best_cost {
                        best_cost = into_cost;
                        best_move = Move::IntoBucket(j);
                    }
                    if !singleton && j == cur_b {
                        current_cost = into_cost;
                    }
                    pre_ca += ca[j];
                    suf_cb -= cb[j];
                }
            }
            debug_assert_ne!(current_cost, u64::MAX);

            if best_cost < current_cost {
                apply_move(&mut buckets, &mut pos, e, cur_b, singleton, best_move);
                score -= current_cost - best_cost;
                improved = true;
            }
        }
        // Publish each improving sweep's state: the per-start quality
        // curve the anytime API streams (snapshot only when listened to).
        if improved && ctx.has_sink() {
            let snapshot = Ranking::from_buckets(buckets.clone()).expect("moves preserve validity");
            ctx.offer_incumbent(&snapshot, score);
        }
    }

    let ranking = Ranking::from_buckets(buckets).expect("moves preserve validity");
    debug_assert_eq!(score, pairs.score(&ranking));
    (score, ranking)
}

/// Apply `mv` (indices relative to the remaining list, i.e. with `e`'s
/// singleton bucket removed), updating `pos` incrementally: only the
/// contiguous range of buckets whose index shifted is rewritten.
fn apply_move(
    buckets: &mut Vec<Vec<Element>>,
    pos: &mut [usize],
    e: Element,
    cur_b: usize,
    singleton: bool,
    mv: Move,
) {
    if singleton {
        buckets.remove(cur_b);
    } else {
        buckets[cur_b].retain(|&f| f != e);
    }
    // Buckets whose index changed form one contiguous range [lo, hi]:
    // the removal (if any) shifts indices above cur_b down by one and the
    // insertion (if any) shifts indices above the slot up by one, so the
    // two cancel outside the range between them.
    let (lo, hi) = match (singleton, mv) {
        (false, Move::IntoBucket(j)) => {
            buckets[j].push(e);
            pos[e.index()] = j;
            return; // nothing shifted
        }
        (false, Move::NewBucket(j)) => {
            buckets.insert(j, vec![e]);
            (j, buckets.len() - 1) // everything from j on shifted up
        }
        (true, Move::IntoBucket(j)) => {
            buckets[j].push(e);
            (cur_b.min(j), buckets.len() - 1) // suffix after cur_b shifted down
        }
        (true, Move::NewBucket(j)) => {
            buckets.insert(j, vec![e]);
            // Outside [min, max] the −1 of the removal cancels the +1 of
            // the insertion.
            (cur_b.min(j), cur_b.max(j).min(buckets.len() - 1))
        }
    };
    for bi in lo..=hi {
        for &f in &buckets[bi] {
            pos[f.index()] = bi;
        }
    }
}

impl BioConsert {
    /// Refine every start on parallel workers and keep the best result by
    /// `(score, start index)` — deterministic for any thread count.
    fn best_start(
        &self,
        starts: &[&Ranking],
        pairs: &PairTable,
        ctx: &AlgoContext,
    ) -> Option<Ranking> {
        // One sweep per start is ~n² row reads; below the threshold the
        // search is microseconds and spawning workers would dominate it
        // (same gating idea as `CostMatrix::build`). Thresholding doesn't
        // affect results — both paths are bit-identical.
        let work = starts.len() * pairs.n() * pairs.n();
        let threads = if self.force_sequential || work < 1 << 18 {
            1
        } else {
            parallel::num_threads()
        };
        let results =
            parallel::par_map_slice(starts, threads, |_, start| local_search(start, pairs, ctx));
        results
            .into_iter()
            .min_by_key(|(score, _)| *score)
            .map(|(_, ranking)| ranking)
    }
}

impl ConsensusAlgorithm for BioConsert {
    fn name(&self) -> String {
        "BioConsert".to_owned()
    }

    fn produces_ties(&self) -> bool {
        true
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        let pairs = ctx.cost_matrix(data);
        let inputs = if self.only_extra_starts {
            &[]
        } else {
            data.rankings()
        };
        // A warm-start hint (the previous consensus of an edited dataset,
        // DESIGN.md §13) is one more start. Appended last and selected by
        // first-minimum, it only wins on strict improvement — so a warm
        // run is never worse than the cold run at equal budget, and
        // without a hint the behavior is bit-identical to before. Hints
        // over a different universe are ignored (the exact solver's block
        // decomposition re-runs BioConsert on restricted sub-datasets
        // with the whole-dataset context).
        let warm = ctx
            .warm_start()
            .filter(|w| data.is_complete_ranking(&w.ranking))
            .map(|w| w.ranking.clone());
        let starts: Vec<&Ranking> = inputs
            .iter()
            .chain(self.extra_starts.iter())
            .chain(warm.iter())
            .collect();
        self.best_start(&starts, &pairs, ctx)
            .expect("at least one start")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;
    use crate::score::kemeny_score;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    fn paper_dataset() -> Dataset {
        data(&["[{0},{3},{1,2}]", "[{0},{1,2},{3}]", "[{3},{0,2},{1}]"])
    }

    #[test]
    fn finds_paper_optimum() {
        let d = paper_dataset();
        let r = BioConsert::default().run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(kemeny_score(&r, &d), 5);
    }

    #[test]
    fn never_worse_than_any_input() {
        let d = data(&[
            "[{0,1},{2,3},{4}]",
            "[{4},{3},{2},{1},{0}]",
            "[{2},{0,4},{1,3}]",
        ]);
        let r = BioConsert::default().run(&d, &mut AlgoContext::seeded(0));
        let s = kemeny_score(&r, &d);
        for input in d.rankings() {
            assert!(s <= kemeny_score(input, &d));
        }
        assert!(d.is_complete_ranking(&r));
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        use crate::algorithms::exact::brute_force;
        // A handful of fixed small instances; BioConsert (multi-start
        // steepest descent) should reach the optimum on all of them.
        let cases: [&[&str]; 3] = [
            &["[{0},{1,2}]", "[{2},{0},{1}]", "[{1},{2},{0}]"],
            &["[{0,1,2,3}]", "[{3},{2},{1},{0}]"],
            &["[{0},{1},{2},{3}]", "[{1},{0},{3},{2}]", "[{0,2},{1,3}]"],
        ];
        for lines in cases {
            let d = data(lines);
            let (opt, _) = brute_force(&d);
            let r = BioConsert::default().run(&d, &mut AlgoContext::seeded(0));
            assert_eq!(kemeny_score(&r, &d), opt, "instance {lines:?}");
        }
    }

    #[test]
    fn local_search_monotone_from_any_start() {
        let d = data(&["[{0},{1},{2},{3},{4}]", "[{4},{0,1},{2,3}]"]);
        let pairs = PairTable::build(&d);
        let start = parse_ranking("[{4},{3},{2},{1},{0}]").unwrap();
        let before = pairs.score(&start);
        let (after, r) = local_search(&start, &pairs, &AlgoContext::seeded(0));
        assert!(after <= before);
        assert_eq!(after, pairs.score(&r));
    }

    #[test]
    fn parallel_multi_start_is_bit_identical_to_sequential() {
        let d = data(&[
            "[{0},{1,2},{3},{4},{5},{6,7}]",
            "[{7},{6},{5},{4},{3},{2},{1},{0}]",
            "[{2},{0,4},{1,3},{5,6,7}]",
            "[{1,5},{0,2,3},{4,6},{7}]",
        ]);
        let par = BioConsert::default();
        let seq = BioConsert {
            force_sequential: true,
            ..BioConsert::default()
        };
        for seed in 0..5 {
            let rp = par.run(&d, &mut AlgoContext::seeded(seed));
            let rs = seq.run(&d, &mut AlgoContext::seeded(seed));
            assert_eq!(rp, rs, "seed {seed}");
        }
    }

    #[test]
    fn extra_starts_only_mode() {
        let d = paper_dataset();
        let algo = BioConsert {
            extra_starts: vec![parse_ranking("[{0,1,2,3}]").unwrap()],
            only_extra_starts: true,
            ..BioConsert::default()
        };
        let r = algo.run(&d, &mut AlgoContext::seeded(0));
        assert!(d.is_complete_ranking(&r));
    }

    #[test]
    fn single_element_dataset() {
        let d = data(&["[{0}]"]);
        let r = BioConsert::default().run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r.n_elements(), 1);
    }
}
