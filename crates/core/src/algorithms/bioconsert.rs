//! BioConsert (§3.1, [Cohen-Boulakia, Denise, Hamel 2011]).
//!
//! The generalized-Kendall-τ local search that the paper finds best in the
//! very large majority of cases. Starting from a solution (each input
//! ranking in turn, keeping the best final result), it repeatedly applies
//! the two edit operations as long as the cost decreases:
//!
//! 1. remove an element from its bucket and place it into a **new bucket**
//!    at any position;
//! 2. move an element into an **existing bucket**.
//!
//! With the pairwise table all `2k+1` destinations for one element are
//! evaluated in `O(n)` total via prefix/suffix sums, so one sweep over all
//! elements costs `O(n²)` — and the table itself is the `O(n²)` memory
//! footprint the paper attributes to BioConsert (§3.1, §7.4).

use super::{AlgoContext, ConsensusAlgorithm};
use crate::dataset::Dataset;
use crate::element::Element;
use crate::pairs::PairTable;
use crate::ranking::Ranking;

/// BioConsert with configurable starting points.
#[derive(Debug, Clone, Default)]
pub struct BioConsert {
    /// Additional starting rankings beyond the dataset's own inputs
    /// (used by the ablation bench; normally empty).
    pub extra_starts: Vec<Ranking>,
    /// If `true`, skip the input rankings and use only `extra_starts`.
    pub only_extra_starts: bool,
}

/// A candidate destination for the element being moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Move {
    /// New singleton bucket inserted at slot `j` (before remaining bucket `j`).
    NewBucket(usize),
    /// Join remaining bucket `j`.
    IntoBucket(usize),
}

/// Steepest-descent local search from `start`; returns the refined ranking
/// and its score.
pub(crate) fn local_search(
    start: &Ranking,
    pairs: &PairTable,
    ctx: &mut AlgoContext,
) -> (u64, Ranking) {
    let n = pairs.n();
    let mut buckets: Vec<Vec<Element>> = start.buckets().map(|b| b.to_vec()).collect();
    let mut pos: Vec<usize> = vec![0; n];
    for (bi, b) in buckets.iter().enumerate() {
        for &e in b {
            pos[e.index()] = bi;
        }
    }
    let mut score = pairs.score(start);

    // Reusable per-sweep buffers (perf-book: keep workhorse collections).
    let mut ca: Vec<u64> = Vec::new(); // cost if e strictly after bucket i
    let mut cb: Vec<u64> = Vec::new(); // cost if e strictly before bucket i
    let mut ct: Vec<u64> = Vec::new(); // cost if e tied with bucket i

    let mut improved = true;
    while improved && !ctx.expired() {
        improved = false;
        for id in 0..n {
            let e = Element(id as u32);
            let cur_b = pos[id];
            let singleton = buckets[cur_b].len() == 1;

            // Per-bucket pair-cost sums with e removed; a singleton bucket
            // of e itself disappears from the remaining list.
            ca.clear();
            cb.clear();
            ct.clear();
            for (i, b) in buckets.iter().enumerate() {
                if i == cur_b && singleton {
                    continue;
                }
                let (mut sa, mut sb, mut st) = (0u64, 0u64, 0u64);
                for &f in b {
                    if f == e {
                        continue;
                    }
                    sa += pairs.cost_before(f, e) as u64;
                    sb += pairs.cost_before(e, f) as u64;
                    st += pairs.cost_tied(e, f) as u64;
                }
                ca.push(sa);
                cb.push(sb);
                ct.push(st);
            }
            let k = ca.len();

            // cost of a new singleton at slot j:  Σ_{i<j} ca[i] + Σ_{i≥j} cb[i]
            // cost of joining bucket j:           Σ_{i<j} ca[i] + ct[j] + Σ_{i>j} cb[i]
            // One left-to-right walk with running prefix/suffix sums.
            let total_cb: u64 = cb.iter().sum();
            let mut pre_ca = 0u64;
            let mut suf_cb = total_cb;
            // Current placement corresponds to slot/bucket index `cur_b`
            // in the remaining list (buckets before cur_b are unchanged).
            let mut current_cost = u64::MAX;
            let mut best_cost = u64::MAX;
            let mut best_move = Move::NewBucket(0);
            for j in 0..=k {
                let new_cost = pre_ca + suf_cb;
                if new_cost < best_cost {
                    best_cost = new_cost;
                    best_move = Move::NewBucket(j);
                }
                if singleton && j == cur_b {
                    current_cost = new_cost;
                }
                if j < k {
                    let into_cost = pre_ca + ct[j] + (suf_cb - cb[j]);
                    if into_cost < best_cost {
                        best_cost = into_cost;
                        best_move = Move::IntoBucket(j);
                    }
                    if !singleton && j == cur_b {
                        current_cost = into_cost;
                    }
                    pre_ca += ca[j];
                    suf_cb -= cb[j];
                }
            }
            debug_assert_ne!(current_cost, u64::MAX);

            if best_cost < current_cost {
                // Apply: remove e, then re-insert at the best destination.
                let b = &mut buckets[cur_b];
                b.retain(|&f| f != e);
                if b.is_empty() {
                    buckets.remove(cur_b);
                }
                match best_move {
                    Move::NewBucket(j) => buckets.insert(j, vec![e]),
                    Move::IntoBucket(j) => buckets[j].push(e),
                }
                for (bi, b) in buckets.iter().enumerate() {
                    for &f in b {
                        pos[f.index()] = bi;
                    }
                }
                score -= current_cost - best_cost;
                improved = true;
            }
        }
    }

    let ranking = Ranking::from_buckets(buckets).expect("moves preserve validity");
    debug_assert_eq!(score, pairs.score(&ranking));
    (score, ranking)
}

impl ConsensusAlgorithm for BioConsert {
    fn name(&self) -> String {
        "BioConsert".to_owned()
    }

    fn produces_ties(&self) -> bool {
        true
    }

    fn run(&self, data: &Dataset, ctx: &mut AlgoContext) -> Ranking {
        let pairs = PairTable::build(data);
        let mut best: Option<(u64, Ranking)> = None;
        let inputs = if self.only_extra_starts {
            &[]
        } else {
            data.rankings()
        };
        for start in inputs.iter().chain(self.extra_starts.iter()) {
            let (score, refined) = local_search(start, &pairs, ctx);
            if best.as_ref().map_or(true, |(s, _)| score < *s) {
                best = Some((score, refined));
            }
            if ctx.expired() {
                break;
            }
        }
        best.expect("at least one start").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;
    use crate::score::kemeny_score;

    fn data(lines: &[&str]) -> Dataset {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    }

    fn paper_dataset() -> Dataset {
        data(&["[{0},{3},{1,2}]", "[{0},{1,2},{3}]", "[{3},{0,2},{1}]"])
    }

    #[test]
    fn finds_paper_optimum() {
        let d = paper_dataset();
        let r = BioConsert::default().run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(kemeny_score(&r, &d), 5);
    }

    #[test]
    fn never_worse_than_any_input() {
        let d = data(&["[{0,1},{2,3},{4}]", "[{4},{3},{2},{1},{0}]", "[{2},{0,4},{1,3}]"]);
        let r = BioConsert::default().run(&d, &mut AlgoContext::seeded(0));
        let s = kemeny_score(&r, &d);
        for input in d.rankings() {
            assert!(s <= kemeny_score(input, &d));
        }
        assert!(d.is_complete_ranking(&r));
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        use crate::algorithms::exact::brute_force;
        // A handful of fixed small instances; BioConsert (multi-start
        // steepest descent) should reach the optimum on all of them.
        let cases: [&[&str]; 3] = [
            &["[{0},{1,2}]", "[{2},{0},{1}]", "[{1},{2},{0}]"],
            &["[{0,1,2,3}]", "[{3},{2},{1},{0}]"],
            &["[{0},{1},{2},{3}]", "[{1},{0},{3},{2}]", "[{0,2},{1,3}]"],
        ];
        for lines in cases {
            let d = data(lines);
            let (opt, _) = brute_force(&d);
            let r = BioConsert::default().run(&d, &mut AlgoContext::seeded(0));
            assert_eq!(kemeny_score(&r, &d), opt, "instance {lines:?}");
        }
    }

    #[test]
    fn local_search_monotone_from_any_start() {
        let d = data(&["[{0},{1},{2},{3},{4}]", "[{4},{0,1},{2,3}]"]);
        let pairs = PairTable::build(&d);
        let start = parse_ranking("[{4},{3},{2},{1},{0}]").unwrap();
        let before = pairs.score(&start);
        let (after, r) = local_search(&start, &pairs, &mut AlgoContext::seeded(0));
        assert!(after <= before);
        assert_eq!(after, pairs.score(&r));
    }

    #[test]
    fn extra_starts_only_mode() {
        let d = paper_dataset();
        let algo = BioConsert {
            extra_starts: vec![parse_ranking("[{0,1,2,3}]").unwrap()],
            only_extra_starts: true,
        };
        let r = algo.run(&d, &mut AlgoContext::seeded(0));
        assert!(d.is_complete_ranking(&r));
    }

    #[test]
    fn single_element_dataset() {
        let d = data(&["[{0}]"]);
        let r = BioConsert::default().run(&d, &mut AlgoContext::seeded(0));
        assert_eq!(r.n_elements(), 1);
    }
}
