//! Typed algorithm specifications and the constructor registry.
//!
//! An [`AlgoSpec`] is the serving-side name of an algorithm: a small typed
//! value (`AlgoSpec::BestOf { base, runs }`, `AlgoSpec::MedRank(0.7)`)
//! whose [`Display`](std::fmt::Display) form (`"BestOf(KwikSort,20)"`,
//! `"MedRank(0.7)"`, `"Exact"`) parses back to the same value —
//! [`AlgoSpec::parse`] ∘ `to_string` is the identity over every
//! registered algorithm (see DESIGN.md §8.1).
//!
//! Parsing is case-insensitive and alias-aware (`"bordacount"`,
//! `"MEDRank(0.5)"`, `"kwiksortmin"` all resolve), and unknown names
//! produce a [`SpecParseError`] carrying a "did you mean" suggestion
//! computed by edit distance over the whole registry.
//!
//! The hard-coded panels of earlier revisions survive as thin presets over
//! the registry: [`paper_panel`], [`extended_panel`], [`full_panel`].

use crate::algorithms::{
    ailon, bioconsert, bnb, borda, chanas, copeland, exact, fagin, kwiksort, mc4, medrank,
    pick_a_perm, repeat_choice, BestOf, ConsensusAlgorithm,
};
use std::fmt;
use std::str::FromStr;

/// Default repeat count for the paper's "Min" multi-start variants when a
/// preset or alias does not specify one (the harness default).
pub const DEFAULT_MIN_RUNS: usize = 20;

/// How a built algorithm may use the machine's threads.
///
/// `Parallel` lets multi-start members (BioConsert, [`AlgoSpec::BestOf`])
/// fan repeats out to worker threads; `Sequential` pins them to one
/// thread. The two policies are bit-identical in deadline-free runs (the
/// PR-1 determinism contract), so `Sequential` exists for timing
/// experiments and reproducibility tests, not for different results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threading {
    /// Multi-start members may use the parallel worker substrate.
    #[default]
    Parallel,
    /// Pin every member to the sequential path (host-independent seconds).
    Sequential,
}

/// Which pairwise-cost substrate the engine should run a request on.
///
/// `Auto` materializes the dense [`crate::CostMatrix`] while its 8n² bytes
/// fit [`DENSE_LANE_BUDGET_BYTES`] and switches to the matrix-free
/// positional lane beyond that — but only for specs that support it
/// ([`AlgoSpec::supports_matrix_free`]); the rest always run dense. The
/// explicit variants override the budget in either direction (a
/// `MatrixFree` request on an unsupported spec still falls back to dense,
/// and the report's `lane` field records what actually ran).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LanePolicy {
    /// Dense while 8n² fits the budget, matrix-free beyond (default).
    #[default]
    Auto,
    /// Always materialize the dense cost matrix.
    Dense,
    /// Skip the matrix wherever the spec's kernel allows it.
    MatrixFree,
}

/// The pairwise-cost substrate a request actually ran on — resolved from
/// [`LanePolicy`] by the engine and recorded in
/// [`super::ConsensusReport::lane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelLane {
    /// The dense 8n²-byte [`crate::CostMatrix`] was materialized.
    #[default]
    Dense,
    /// The O(m·n) positional lane ran; no matrix was built.
    MatrixFree,
}

impl KernelLane {
    /// Stable lower-snake label (`"dense"` / `"matrix_free"`) used by
    /// `report_json` and the `rawt_kernel_lane_total{lane}` counter.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelLane::Dense => "dense",
            KernelLane::MatrixFree => "matrix_free",
        }
    }
}

impl fmt::Display for KernelLane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Memory budget (bytes) for the dense lane under [`LanePolicy::Auto`]:
/// when the packed cost matrix would exceed this (8n² > budget, i.e.
/// n > 5792), supported specs switch to the matrix-free lane. 256 MiB
/// keeps every workload the paper measured (n ≤ 250) — and everything up
/// into the low thousands — on the bit-for-bit battle-tested dense path.
pub const DENSE_LANE_BUDGET_BYTES: usize = 256 << 20;

impl LanePolicy {
    /// Resolve the policy against a concrete spec and problem size.
    /// `pinned_dense` forces the dense lane regardless of policy (set when
    /// the request carries a pre-built cost matrix).
    pub fn resolve(self, spec: &AlgoSpec, n: usize, pinned_dense: bool) -> KernelLane {
        if pinned_dense || !spec.supports_matrix_free() {
            return KernelLane::Dense;
        }
        match self {
            LanePolicy::Dense => KernelLane::Dense,
            LanePolicy::MatrixFree => KernelLane::MatrixFree,
            LanePolicy::Auto => {
                // 8n² bytes of packed matrix; saturate so absurd n can't wrap.
                let dense_bytes = n.saturating_mul(n).saturating_mul(8);
                if dense_bytes > DENSE_LANE_BUDGET_BYTES {
                    KernelLane::MatrixFree
                } else {
                    KernelLane::Dense
                }
            }
        }
    }
}

/// How a built algorithm may use the machine: threading substrate plus
/// pairwise-cost lane.
///
/// The former `Parallel`/`Sequential` enum grew a second axis in PR 10;
/// `ExecPolicy::parallel()` / `ExecPolicy::sequential()` reproduce the old
/// variants (with the default `Auto` lane), and `with_lane` sets the lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecPolicy {
    /// Thread-use policy for multi-start members.
    pub threading: Threading,
    /// Pairwise-cost substrate selection.
    pub lane: LanePolicy,
}

impl ExecPolicy {
    /// The default policy: parallel threading, `Auto` lane.
    pub fn parallel() -> Self {
        ExecPolicy {
            threading: Threading::Parallel,
            lane: LanePolicy::Auto,
        }
    }

    /// Sequential threading (host-independent seconds), `Auto` lane.
    pub fn sequential() -> Self {
        ExecPolicy {
            threading: Threading::Sequential,
            lane: LanePolicy::Auto,
        }
    }

    /// This policy with the lane replaced.
    pub fn with_lane(self, lane: LanePolicy) -> Self {
        ExecPolicy { lane, ..self }
    }
}

/// A typed, parse/display round-trippable algorithm specification.
///
/// This is the unit of the engine's request API: requests carry an
/// `AlgoSpec`, reports echo it back, and [`AlgoSpec::build`] instantiates
/// the actual [`ConsensusAlgorithm`] kernel on demand.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgoSpec {
    /// Ailon's 3/2-approximation (LP + rounding) — paper "Ailon3/2".
    Ailon,
    /// BioConsert local search.
    BioConsert,
    /// Borda count — paper "BordaCount".
    Borda,
    /// Copeland's method (positional adaptation) — paper "CopelandMethod".
    Copeland,
    /// Classic pairwise Copeland (extension).
    CopelandPairwise,
    /// FaginDyn dynamic program, large-bucket variant.
    FaginLarge,
    /// FaginDyn dynamic program, small-bucket variant.
    FaginSmall,
    /// KwikSort with the 3-way pivot adaptation.
    KwikSort,
    /// MEDRank with threshold `h` — `MedRank(0.7)`.
    MedRank(f64),
    /// Pick-a-Perm (best input ranking).
    PickAPerm,
    /// RepeatChoice.
    RepeatChoice,
    /// Chanas local search (extension).
    Chanas,
    /// Chanas run in both directions (extension).
    ChanasBoth,
    /// Permutation-only branch and bound, optionally beam-limited
    /// (extension) — `BnB` or `BnB(64)`.
    BnB {
        /// Beam width cap; `None` explores the full tree.
        beam: Option<usize>,
    },
    /// MC4 Markov-chain hybrid (extension).
    Mc4,
    /// The exact solver (branch and bound over bucket orders, §4.2).
    Exact,
    /// Run `base` `runs` times and keep the best result by Kemeny score —
    /// the paper's "Min" variants are `BestOf(KwikSort,20)` and
    /// `BestOf(RepeatChoice,20)`.
    BestOf {
        /// The wrapped specification.
        base: Box<AlgoSpec>,
        /// Repeat count (≥ 1).
        runs: usize,
    },
}

/// What went wrong while parsing an [`AlgoSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecErrorKind {
    /// The name does not resolve to any registered algorithm.
    UnknownName,
    /// The algorithm is registered but its arguments are malformed.
    InvalidArguments,
}

/// Failure to parse an [`AlgoSpec`], with a registry-wide "did you mean"
/// suggestion when the name is unknown and some known name is close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    /// The offending input.
    pub input: String,
    /// What went wrong.
    pub message: String,
    /// Unknown name vs. bad arguments to a known one.
    pub kind: SpecErrorKind,
    /// Closest registered name, if the name is unknown and some
    /// registered spelling is within edit distance 3.
    pub suggestion: Option<String>,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            SpecErrorKind::UnknownName => {
                write!(f, "unknown algorithm {:?}: {}", self.input, self.message)?
            }
            SpecErrorKind::InvalidArguments => write!(
                f,
                "invalid algorithm spec {:?}: {}",
                self.input, self.message
            )?,
        }
        if let Some(s) = &self.suggestion {
            write!(f, " (did you mean {s:?}?)")?;
        }
        Ok(())
    }
}

impl std::error::Error for SpecParseError {}

/// One registry row: a constructible algorithm family with its canonical
/// spelling, accepted aliases, and Table 1 metadata.
pub struct AlgoEntry {
    /// Canonical spec spelling ([`AlgoSpec`]'s `Display` head).
    pub canonical: &'static str,
    /// Case-insensitively accepted alternative spellings (paper names,
    /// shorthands). Parameterized entries list alias *heads*.
    pub aliases: &'static [&'static str],
    /// Paper Table 1 class tag.
    pub class: &'static str,
    /// One-line description for `rawt list`.
    pub summary: &'static str,
    /// Representative spec (used by `rawt list` examples and the
    /// round-trip tests).
    pub example: fn() -> AlgoSpec,
}

/// The constructor registry: every algorithm family the workspace ships,
/// including extensions and the exact solver.
pub fn registry() -> &'static [AlgoEntry] {
    &[
        AlgoEntry {
            canonical: "Ailon",
            aliases: &["Ailon3/2", "AilonThreeHalves"],
            class: "[K] linear programming",
            summary: "Ailon's 3/2-approximation: LP relaxation plus rounding",
            example: || AlgoSpec::Ailon,
        },
        AlgoEntry {
            canonical: "BioConsert",
            aliases: &[],
            class: "[G] local search",
            summary: "steepest-descent local search from every input ranking",
            example: || AlgoSpec::BioConsert,
        },
        AlgoEntry {
            canonical: "Borda",
            aliases: &["BordaCount"],
            class: "[P] sort by score",
            summary: "sort by mean position, ties for equal scores",
            example: || AlgoSpec::Borda,
        },
        AlgoEntry {
            canonical: "Copeland",
            aliases: &["CopelandMethod"],
            class: "[P] sort by score",
            summary: "sort by pairwise wins minus losses",
            example: || AlgoSpec::Copeland,
        },
        AlgoEntry {
            canonical: "CopelandPairwise",
            aliases: &[],
            class: "[P] extension",
            summary: "classic pairwise Copeland (extension)",
            example: || AlgoSpec::CopelandPairwise,
        },
        AlgoEntry {
            canonical: "FaginLarge",
            aliases: &[],
            class: "[G] dynamic programming",
            summary: "FaginDyn bucket-order DP, prefers large buckets",
            example: || AlgoSpec::FaginLarge,
        },
        AlgoEntry {
            canonical: "FaginSmall",
            aliases: &[],
            class: "[G] dynamic programming",
            summary: "FaginDyn bucket-order DP, prefers small buckets",
            example: || AlgoSpec::FaginSmall,
        },
        AlgoEntry {
            canonical: "KwikSort",
            aliases: &[],
            class: "[K] divide & conquer",
            summary: "randomized quicksort with a 3-way (tie) pivot",
            example: || AlgoSpec::KwikSort,
        },
        AlgoEntry {
            canonical: "MedRank",
            aliases: &["MEDRank"],
            class: "[P] extract order",
            summary: "median-rank extraction at threshold h: MedRank(0.5)",
            example: || AlgoSpec::MedRank(0.5),
        },
        AlgoEntry {
            canonical: "PickAPerm",
            aliases: &["Pick-a-Perm"],
            class: "[K] naive",
            summary: "return the best-scoring input ranking",
            example: || AlgoSpec::PickAPerm,
        },
        AlgoEntry {
            canonical: "RepeatChoice",
            aliases: &[],
            class: "[K] sort by order",
            summary: "repeatedly pick a pivot ranking's next bucket",
            example: || AlgoSpec::RepeatChoice,
        },
        AlgoEntry {
            canonical: "Chanas",
            aliases: &[],
            class: "[K] local search",
            summary: "Chanas insertion-sort local search (extension)",
            example: || AlgoSpec::Chanas,
        },
        AlgoEntry {
            canonical: "ChanasBoth",
            aliases: &[],
            class: "[K] local search",
            summary: "Chanas run in both scan directions (extension)",
            example: || AlgoSpec::ChanasBoth,
        },
        AlgoEntry {
            canonical: "BnB",
            aliases: &["BranchAndBound"],
            class: "[K] branch & bound",
            summary: "permutation-only branch and bound; BnB(64) beam-limits it",
            example: || AlgoSpec::BnB { beam: None },
        },
        AlgoEntry {
            canonical: "MC4",
            aliases: &[],
            class: "[P] hybrid",
            summary: "MC4 Markov-chain stationary-distribution hybrid (extension)",
            example: || AlgoSpec::Mc4,
        },
        AlgoEntry {
            canonical: "Exact",
            aliases: &["ExactAlgorithm", "ExactSolution"],
            class: "exact (§4.2)",
            summary: "branch and bound over bucket orders; proves optimality",
            example: || AlgoSpec::Exact,
        },
        AlgoEntry {
            canonical: "BestOf",
            aliases: &["KwikSortMin", "RepeatChoiceMin"],
            class: "[K] wrapper",
            summary: "best of N repeats of a randomized base: BestOf(KwikSort,20)",
            example: || AlgoSpec::BestOf {
                base: Box::new(AlgoSpec::KwikSort),
                runs: DEFAULT_MIN_RUNS,
            },
        },
    ]
}

/// Lowercase and strip separators so `"Pick-a-Perm"`, `"pickaperm"` and
/// `"PICK_A_PERM"` all normalize identically.
fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| !matches!(c, '-' | '_' | '/' | ' '))
        .flat_map(char::to_lowercase)
        .collect()
}

/// Levenshtein edit distance (suggestion machinery only — inputs are short).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// Closest registered spelling to `name` within edit distance 3, for the
/// "did you mean" diagnostics.
pub fn suggest(name: &str) -> Option<String> {
    let norm = normalize(name);
    let head = norm.split('(').next().unwrap_or(&norm);
    registry()
        .iter()
        .flat_map(|e| std::iter::once(e.canonical).chain(e.aliases.iter().copied()))
        .map(|cand| (edit_distance(head, &normalize(cand)), cand))
        .filter(|&(d, _)| d <= 3)
        .min_by_key(|&(d, _)| d)
        .map(|(_, cand)| cand.to_owned())
}

impl AlgoSpec {
    /// Parse a specification string, case-insensitively, accepting every
    /// registered alias. See the module docs for the grammar.
    pub fn parse(input: &str) -> Result<AlgoSpec, SpecParseError> {
        // Argument/shape problems on a *recognized* head: no suggestion —
        // pointing at the name the user already typed would misdirect.
        let err = |message: String| SpecParseError {
            input: input.to_owned(),
            message,
            kind: SpecErrorKind::InvalidArguments,
            suggestion: None,
        };
        let s = input.trim();
        if s.is_empty() {
            return Err(err("empty specification".to_owned()));
        }
        // Split `Head(args)`; args may nest (BestOf(BestOf(KwikSort,2),3)).
        let (head, args) = match s.find('(') {
            None => (s, Vec::new()),
            Some(open) => {
                if !s.ends_with(')') {
                    return Err(err("unbalanced parentheses".to_owned()));
                }
                let inner = &s[open + 1..s.len() - 1];
                let mut depth = 0usize;
                let mut args = Vec::new();
                let mut start = 0usize;
                for (i, c) in inner.char_indices() {
                    match c {
                        '(' => depth += 1,
                        ')' => {
                            depth = depth
                                .checked_sub(1)
                                .ok_or_else(|| err("unbalanced parentheses".to_owned()))?
                        }
                        ',' if depth == 0 => {
                            args.push(inner[start..i].trim());
                            start = i + 1;
                        }
                        _ => {}
                    }
                }
                if depth != 0 {
                    return Err(err("unbalanced parentheses".to_owned()));
                }
                args.push(inner[start..].trim());
                (&s[..open], args)
            }
        };
        let no_args = |spec: AlgoSpec| -> Result<AlgoSpec, SpecParseError> {
            if args.is_empty() {
                Ok(spec)
            } else {
                Err(err(format!("{head} takes no arguments")))
            }
        };
        match normalize(head).as_str() {
            "ailon" | "ailon32" | "ailonthreehalves" => no_args(AlgoSpec::Ailon),
            "bioconsert" => no_args(AlgoSpec::BioConsert),
            "borda" | "bordacount" => no_args(AlgoSpec::Borda),
            "copeland" | "copelandmethod" => no_args(AlgoSpec::Copeland),
            "copelandpairwise" => no_args(AlgoSpec::CopelandPairwise),
            "faginlarge" => no_args(AlgoSpec::FaginLarge),
            "faginsmall" => no_args(AlgoSpec::FaginSmall),
            "kwiksort" => no_args(AlgoSpec::KwikSort),
            "pickaperm" => no_args(AlgoSpec::PickAPerm),
            "repeatchoice" => no_args(AlgoSpec::RepeatChoice),
            "chanas" => no_args(AlgoSpec::Chanas),
            "chanasboth" => no_args(AlgoSpec::ChanasBoth),
            "mc4" => no_args(AlgoSpec::Mc4),
            "exact" | "exactalgorithm" | "exactsolution" => no_args(AlgoSpec::Exact),
            "kwiksortmin" => no_args(AlgoSpec::BestOf {
                base: Box::new(AlgoSpec::KwikSort),
                runs: DEFAULT_MIN_RUNS,
            }),
            "repeatchoicemin" => no_args(AlgoSpec::BestOf {
                base: Box::new(AlgoSpec::RepeatChoice),
                runs: DEFAULT_MIN_RUNS,
            }),
            "medrank" => match args.as_slice() {
                [] => Ok(AlgoSpec::MedRank(0.5)),
                [h] => {
                    let h: f64 = h
                        .parse()
                        .map_err(|_| err(format!("bad MedRank threshold {h:?}")))?;
                    if !(0.0..=1.0).contains(&h) {
                        return Err(err(format!("MedRank threshold {h} outside [0,1]")));
                    }
                    Ok(AlgoSpec::MedRank(h))
                }
                _ => Err(err("MedRank takes one threshold argument".to_owned())),
            },
            "bnb" | "branchandbound" => match args.as_slice() {
                [] => Ok(AlgoSpec::BnB { beam: None }),
                [b] => {
                    let b = b.trim_start_matches("beam=");
                    let beam: usize = b
                        .parse()
                        .map_err(|_| err(format!("bad BnB beam width {b:?}")))?;
                    Ok(AlgoSpec::BnB { beam: Some(beam) })
                }
                _ => Err(err("BnB takes at most one beam-width argument".to_owned())),
            },
            "bestof" => match args.as_slice() {
                [base, runs] => {
                    let base = AlgoSpec::parse(base)?;
                    let runs: usize = runs
                        .parse()
                        .map_err(|_| err(format!("bad BestOf repeat count {runs:?}")))?;
                    if runs == 0 {
                        return Err(err("BestOf needs at least one repeat".to_owned()));
                    }
                    Ok(AlgoSpec::BestOf {
                        base: Box::new(base),
                        runs,
                    })
                }
                _ => Err(err("BestOf takes (base,runs)".to_owned())),
            },
            _ => Err(SpecParseError {
                input: input.to_owned(),
                message: "not a registered algorithm".to_owned(),
                kind: SpecErrorKind::UnknownName,
                suggestion: suggest(input),
            }),
        }
    }

    /// The display name the paper's tables use (`"Ailon3/2"`,
    /// `"MEDRank(0.5)"`, `"KwikSortMin"`), which [`Self::build`] gives the
    /// constructed kernel. Every paper name parses back to a registered
    /// spec, though the "Min" spellings carry no repeat count and resolve
    /// at [`DEFAULT_MIN_RUNS`] — two `BestOf(KwikSort, _)` specs
    /// differing only in `runs` share the table name `"KwikSortMin"`,
    /// exactly as the paper's tables do.
    pub fn paper_name(&self) -> String {
        match self {
            AlgoSpec::Ailon => "Ailon3/2".to_owned(),
            AlgoSpec::BioConsert => "BioConsert".to_owned(),
            AlgoSpec::Borda => "BordaCount".to_owned(),
            AlgoSpec::Copeland => "CopelandMethod".to_owned(),
            AlgoSpec::CopelandPairwise => "CopelandPairwise".to_owned(),
            AlgoSpec::FaginLarge => "FaginLarge".to_owned(),
            AlgoSpec::FaginSmall => "FaginSmall".to_owned(),
            AlgoSpec::KwikSort => "KwikSort".to_owned(),
            AlgoSpec::MedRank(h) => format!("MEDRank({h})"),
            AlgoSpec::PickAPerm => "Pick-a-Perm".to_owned(),
            AlgoSpec::RepeatChoice => "RepeatChoice".to_owned(),
            AlgoSpec::Chanas => "Chanas".to_owned(),
            AlgoSpec::ChanasBoth => "ChanasBoth".to_owned(),
            AlgoSpec::BnB { beam: None } => "BnB".to_owned(),
            AlgoSpec::BnB { beam: Some(b) } => format!("BnB(beam={b})"),
            AlgoSpec::Mc4 => "MC4".to_owned(),
            AlgoSpec::Exact => "ExactAlgorithm".to_owned(),
            AlgoSpec::BestOf { base, runs } => match base.as_ref() {
                AlgoSpec::KwikSort => "KwikSortMin".to_owned(),
                AlgoSpec::RepeatChoice => "RepeatChoiceMin".to_owned(),
                other => format!("BestOf({other},{runs})"),
            },
        }
    }

    /// Whether the built algorithm can place elements in the same bucket
    /// (Table 1's "can produce ties" column, after adaptation).
    pub fn produces_ties(&self) -> bool {
        match self {
            AlgoSpec::Chanas | AlgoSpec::ChanasBoth | AlgoSpec::BnB { .. } => false,
            AlgoSpec::BestOf { base, .. } => base.produces_ties(),
            _ => true,
        }
    }

    /// Largest `n` the algorithm handles in practice, if bounded — the
    /// single source of truth callers consult before putting a spec in a
    /// request batch (instead of re-encoding per-algorithm caps at every
    /// call site).
    ///
    /// * Ailon 3/2 — the dense simplex substrate becomes impractical past
    ///   n ≈ 45 (DESIGN.md §5; the paper itself reports "no result" for
    ///   n > 45).
    /// * Exact — the bitmask state of the branch-and-bound caps at 64
    ///   (the paper's own exact runs stop at n = 60).
    ///
    /// The heuristics are unbounded (`None`). `BnB` is not listed: past
    /// its internal size cap it degrades to a greedy incumbent and flags
    /// the run timed out, which reports surface as [`super::Outcome::TimedOut`].
    pub fn max_n(&self) -> Option<usize> {
        match self {
            AlgoSpec::Ailon => Some(45),
            AlgoSpec::Exact => Some(64),
            AlgoSpec::BestOf { base, .. } => base.max_n(),
            _ => None,
        }
    }

    /// Whether this spec's kernel can run on the matrix-free lane: its
    /// consensus is a function of O(m·n) positional statistics (Borda,
    /// Copeland, MedRank) or of on-demand cost rows (MC4), so it never
    /// needs the dense matrix resident. Everything else — local searches
    /// scoring O(n²) candidate moves, the exact solver's bound sweeps,
    /// `BestOf` rescoring repeats — re-reads pairwise costs too often for
    /// recomputation to win, and stays dense (DESIGN.md §16).
    pub fn supports_matrix_free(&self) -> bool {
        matches!(
            self,
            AlgoSpec::Borda | AlgoSpec::Copeland | AlgoSpec::MedRank(_) | AlgoSpec::Mc4
        )
    }

    /// Instantiate the algorithm kernel this spec names.
    pub fn build(&self, policy: ExecPolicy) -> Box<dyn ConsensusAlgorithm> {
        let sequential = policy.threading == Threading::Sequential;
        match self {
            AlgoSpec::Ailon => Box::new(ailon::AilonThreeHalves::default()),
            AlgoSpec::BioConsert => Box::new(bioconsert::BioConsert {
                force_sequential: sequential,
                ..bioconsert::BioConsert::default()
            }),
            AlgoSpec::Borda => Box::new(borda::BordaCount),
            AlgoSpec::Copeland => Box::new(copeland::CopelandMethod),
            AlgoSpec::CopelandPairwise => Box::new(copeland::CopelandPairwise),
            AlgoSpec::FaginLarge => Box::new(fagin::FaginDyn::large()),
            AlgoSpec::FaginSmall => Box::new(fagin::FaginDyn::small()),
            AlgoSpec::KwikSort => Box::new(kwiksort::KwikSort),
            AlgoSpec::MedRank(h) => Box::new(medrank::MedRank::new(*h)),
            AlgoSpec::PickAPerm => Box::new(pick_a_perm::PickAPerm),
            AlgoSpec::RepeatChoice => Box::new(repeat_choice::RepeatChoice),
            AlgoSpec::Chanas => Box::new(chanas::Chanas),
            AlgoSpec::ChanasBoth => Box::new(chanas::ChanasBoth),
            AlgoSpec::BnB { beam } => Box::new(bnb::BranchAndBound {
                beam: *beam,
                ..bnb::BranchAndBound::default()
            }),
            AlgoSpec::Mc4 => Box::new(mc4::Mc4::default()),
            AlgoSpec::Exact => Box::new(exact::ExactAlgorithm {
                force_sequential: sequential,
                ..exact::ExactAlgorithm::default()
            }),
            AlgoSpec::BestOf { base, runs } => {
                let mut wrapper = BestOf::new(base.build(policy), *runs, &self.paper_name());
                wrapper.force_sequential = sequential;
                Box::new(wrapper)
            }
        }
    }
}

impl fmt::Display for AlgoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoSpec::Ailon => write!(f, "Ailon"),
            AlgoSpec::BioConsert => write!(f, "BioConsert"),
            AlgoSpec::Borda => write!(f, "Borda"),
            AlgoSpec::Copeland => write!(f, "Copeland"),
            AlgoSpec::CopelandPairwise => write!(f, "CopelandPairwise"),
            AlgoSpec::FaginLarge => write!(f, "FaginLarge"),
            AlgoSpec::FaginSmall => write!(f, "FaginSmall"),
            AlgoSpec::KwikSort => write!(f, "KwikSort"),
            AlgoSpec::MedRank(h) => write!(f, "MedRank({h})"),
            AlgoSpec::PickAPerm => write!(f, "PickAPerm"),
            AlgoSpec::RepeatChoice => write!(f, "RepeatChoice"),
            AlgoSpec::Chanas => write!(f, "Chanas"),
            AlgoSpec::ChanasBoth => write!(f, "ChanasBoth"),
            AlgoSpec::BnB { beam: None } => write!(f, "BnB"),
            AlgoSpec::BnB { beam: Some(b) } => write!(f, "BnB({b})"),
            AlgoSpec::Mc4 => write!(f, "MC4"),
            AlgoSpec::Exact => write!(f, "Exact"),
            AlgoSpec::BestOf { base, runs } => write!(f, "BestOf({base},{runs})"),
        }
    }
}

impl FromStr for AlgoSpec {
    type Err = SpecParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AlgoSpec::parse(s)
    }
}

/// The algorithm set the paper evaluated (Table 4 / Table 5 rows), in the
/// tables' alphabetical order, as specs. `min_runs` configures the "Min"
/// variants' repeat count.
pub fn paper_panel(min_runs: usize) -> Vec<AlgoSpec> {
    vec![
        AlgoSpec::Ailon,
        AlgoSpec::BioConsert,
        AlgoSpec::Borda,
        AlgoSpec::Copeland,
        AlgoSpec::FaginLarge,
        AlgoSpec::FaginSmall,
        AlgoSpec::KwikSort,
        AlgoSpec::BestOf {
            base: Box::new(AlgoSpec::KwikSort),
            runs: min_runs,
        },
        AlgoSpec::MedRank(0.5),
        AlgoSpec::MedRank(0.7),
        AlgoSpec::PickAPerm,
        AlgoSpec::RepeatChoice,
        AlgoSpec::BestOf {
            base: Box::new(AlgoSpec::RepeatChoice),
            runs: min_runs,
        },
    ]
}

/// The non-bold Table 1 rows implemented as extensions (DESIGN.md §7).
pub fn extended_panel() -> Vec<AlgoSpec> {
    vec![
        AlgoSpec::Chanas,
        AlgoSpec::ChanasBoth,
        AlgoSpec::BnB { beam: None },
        AlgoSpec::Mc4,
        AlgoSpec::CopelandPairwise,
    ]
}

/// Every preset spec: the paper panel, the extensions, and the exact
/// solver — what `rawt` matches `--algo` names against.
pub fn full_panel(min_runs: usize) -> Vec<AlgoSpec> {
    let mut panel = paper_panel(min_runs);
    panel.extend(extended_panel());
    panel.push(AlgoSpec::Exact);
    panel
}
