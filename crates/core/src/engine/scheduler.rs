//! Budget-aware job scheduling: a bounded admission queue over a fixed
//! worker pool, replacing the thread-per-job spawn of the first anytime
//! engine (DESIGN.md §10.2).
//!
//! [`Engine::submit`](super::Engine::submit) used to spawn one OS thread
//! per job, which serves a single interactive caller fine but melts under
//! service traffic: a burst of submissions became a burst of threads with
//! no admission control at all. The [`Scheduler`] bounds both dimensions:
//!
//! * **Concurrency cap** — at most `max_concurrent` jobs execute at once,
//!   on long-lived worker threads created lazily on first submission.
//! * **Bounded admission queue** — at most `queue_capacity` jobs wait;
//!   beyond that, [`Scheduler::try_submit`] sheds load with
//!   [`AdmissionError::QueueFull`] carrying a retry hint (the service layer
//!   translates it to HTTP 429 + `Retry-After`).
//! * **Shortest-budget-first ordering** — queued jobs run in ascending
//!   order of their *declared* wall-clock budget (ties broken FIFO;
//!   budget-less jobs are treated as unbounded and run last). A declared
//!   budget is the caller's own statement of how long the job may take, so
//!   it doubles as a size estimate: letting short jobs overtake long ones
//!   bounds queueing delay for exactly the callers that asked to be quick.
//! * **Recovered-first re-admission** — jobs re-admitted from a durable
//!   journal after a restart ([`Scheduler::submit_recovered`]) form a
//!   strictly higher admission class: they run before every fresh
//!   submission, in plain re-admission (FIFO) order, ignoring their
//!   declared budgets. Recovery replays the journal in ascending job-id
//!   order, so the execution order of interrupted work is a deterministic
//!   function of the journal alone — budget-based overtaking by new
//!   traffic could otherwise reorder (and starve) the very jobs the
//!   restart promised to finish.
//!
//! Running jobs are never shed and never preempted — cancellation stays
//! cooperative through each job's [`CancelToken`], exactly as in the
//! thread-per-job engine. Queued jobs whose token is cancelled before a
//! worker picks them up still execute (the kernel observes the token at
//! its first checkpoint and returns immediately), so every accepted job
//! produces a report and no [`JobHandle::wait`] ever dangles.

use super::job::{CancelToken, IncumbentSink, JobHandle};
use super::request::AggregationRequest;
use super::Engine;
use crate::algorithms::MatrixCache;
use crate::engine::ConsensusReport;
use crate::telemetry::{Gauge, MetricsRegistry};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound on the admission queue (waiting jobs, not running ones).
pub const DEFAULT_QUEUE_CAPACITY: usize = 128;

/// How a [`Scheduler`] is shaped: its concurrency cap and queue bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum number of jobs executing at once (worker-pool width, ≥ 1).
    pub max_concurrent: usize,
    /// Maximum number of *queued* (admitted but not yet running) jobs
    /// before [`Scheduler::try_submit`] sheds load (≥ 1).
    pub queue_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_concurrent: crate::parallel::num_threads(),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
        }
    }
}

impl SchedulerConfig {
    pub(crate) fn normalized(self) -> Self {
        SchedulerConfig {
            max_concurrent: self.max_concurrent.max(1),
            queue_capacity: self.queue_capacity.max(1),
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The admission queue is at capacity; retry after the hint (the
    /// shortest declared budget among the jobs ahead, clamped to
    /// `[1s, 60s]` — a heuristic, not a guarantee).
    QueueFull {
        /// Jobs currently waiting.
        queued: usize,
        /// The queue bound they hit.
        capacity: usize,
        /// Suggested wait before retrying.
        retry_after: Duration,
    },
    /// The scheduler is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull {
                queued,
                capacity,
                retry_after,
            } => write!(
                f,
                "admission queue full ({queued}/{capacity} jobs waiting); retry in {:.0?}",
                retry_after
            ),
            AdmissionError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A point-in-time view of the scheduler, for observability (`/healthz`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs admitted but not yet running.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// The admission-queue bound.
    pub queue_capacity: usize,
    /// The concurrency cap.
    pub max_concurrent: usize,
}

/// One admitted, not-yet-running job.
struct QueuedJob {
    request: AggregationRequest,
    sink: Arc<IncumbentSink>,
    cancel: CancelToken,
    report_tx: Sender<std::thread::Result<ConsensusReport>>,
    done: Arc<AtomicBool>,
    seq: u64,
    /// Re-admitted from a journal after a restart: runs ahead of every
    /// fresh submission, FIFO within the recovered class.
    recovered: bool,
    /// When the job entered the queue — the queue-wait phase starts here.
    enqueued: Instant,
}

impl QueuedJob {
    /// Priority key: recovered jobs first (FIFO among themselves — their
    /// budget is ignored so re-admission order is the journal's order),
    /// then ascending declared budget, FIFO within a budget class;
    /// budget-less jobs sort after every bounded one.
    fn key(&self) -> (u8, Duration, u64) {
        if self.recovered {
            (0, Duration::ZERO, self.seq)
        } else {
            (1, self.request.budget.unwrap_or(Duration::MAX), self.seq)
        }
    }
}

#[derive(Default)]
struct State {
    queue: Vec<QueuedJob>,
    /// The jobs currently executing — their declared budget (for the
    /// retry hint) and cancel token (for drain-cancel), keyed by seq.
    running: Vec<(u64, Option<Duration>, CancelToken)>,
    next_seq: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for queued jobs (or shutdown).
    work_ready: Condvar,
    /// Blocking submitters wait here for queue space.
    space_ready: Condvar,
    config: SchedulerConfig,
    /// The owning engine's telemetry registry (threaded into every
    /// executed job).
    metrics: Arc<MetricsRegistry>,
    /// Pre-resolved `rawt_queue_depth` gauge: admission and dequeue are
    /// on the hot path, so the handle is resolved once, not per job.
    queued_gauge: Arc<Gauge>,
    /// Pre-resolved `rawt_jobs_running` gauge.
    running_gauge: Arc<Gauge>,
}

impl Shared {
    fn class_of(recovered: bool) -> &'static str {
        if recovered {
            "recovered"
        } else {
            "fresh"
        }
    }

    /// Record `n` admissions of one class: the per-class counter plus the
    /// queue-depth gauge.
    fn count_admitted(&self, recovered: bool, n: u64) {
        self.metrics
            .counter(
                "rawt_jobs_admitted_total",
                "Jobs admitted into the scheduler queue, by admission class.",
                &[("class", Shared::class_of(recovered))],
            )
            .add(n);
        self.queued_gauge.add(n as i64);
    }

    /// Record `n` submissions shed with `QueueFull` (only the shedding
    /// entry points count — the blocking `submit` loop retries instead of
    /// shedding, and recovered re-admission never sheds).
    fn count_shed(&self, n: u64) {
        self.metrics
            .counter(
                "rawt_jobs_shed_total",
                "Submissions refused with QueueFull, by admission class.",
                &[("class", "fresh")],
            )
            .add(n);
    }
}

/// The budget-aware scheduler behind [`Engine::submit`]. See the module
/// docs for the admission/ordering/shedding rules.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("Scheduler")
            .field("config", &self.shared.config)
            .field("queued", &stats.queued)
            .field("running", &stats.running)
            .finish()
    }
}

impl Scheduler {
    /// A scheduler executing jobs against `cache`, its worker pool spawned
    /// eagerly (the engine constructs the scheduler lazily, on the first
    /// submission, so engines that only ever `run` never pay for it).
    pub fn new(
        config: SchedulerConfig,
        cache: Arc<MatrixCache>,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        let config = config.normalized();
        let queued_gauge = metrics.gauge(
            "rawt_queue_depth",
            "Jobs admitted but not yet running.",
            &[],
        );
        let running_gauge = metrics.gauge("rawt_jobs_running", "Jobs currently executing.", &[]);
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            config,
            metrics,
            queued_gauge,
            running_gauge,
        });
        let workers = (0..config.max_concurrent)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let cache = Arc::clone(&cache);
                std::thread::Builder::new()
                    .name(format!("rank-sched-{i}"))
                    .spawn(move || worker_loop(&shared, &cache))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Admit `request` if the queue has room; otherwise shed it.
    pub fn try_submit(&self, request: AggregationRequest) -> Result<JobHandle, AdmissionError> {
        self.admit(request, false).map_err(|(_, e)| {
            if matches!(e, AdmissionError::QueueFull { .. }) {
                self.shared.count_shed(1);
            }
            e
        })
    }

    /// Admit a whole batch as one unit: either every request fits in the
    /// queue together, or none is admitted (a partially admitted panel
    /// would leave the caller holding half a batch with no way to retry
    /// the rest under the same admission decision). One handle per
    /// request, in request order.
    pub fn try_submit_batch(
        &self,
        requests: Vec<AggregationRequest>,
    ) -> Result<Vec<JobHandle>, AdmissionError> {
        // Build every job's channel/sink/token set before taking the lock,
        // mirroring `admit`.
        let prepared: Vec<_> = requests
            .into_iter()
            .map(|request| {
                let (event_tx, events) = mpsc::channel();
                let (report_tx, report_rx) = mpsc::channel();
                let sink = Arc::new(IncumbentSink::with_sender(event_tx));
                let cancel = CancelToken::new();
                let done = Arc::new(AtomicBool::new(false));
                (request, sink, cancel, done, events, report_rx, report_tx)
            })
            .collect();
        let mut state = self.shared.state.lock().expect("scheduler state poisoned");
        if state.shutdown {
            return Err(AdmissionError::ShuttingDown);
        }
        if state.queue.len() + prepared.len() > self.shared.config.queue_capacity {
            let err = AdmissionError::QueueFull {
                queued: state.queue.len(),
                capacity: self.shared.config.queue_capacity,
                retry_after: retry_hint(&state),
            };
            drop(state);
            self.shared.count_shed(prepared.len() as u64);
            return Err(err);
        }
        let handles: Vec<JobHandle> = prepared
            .into_iter()
            .map(
                |(request, sink, cancel, done, events, report_rx, report_tx)| {
                    let seq = state.next_seq;
                    state.next_seq += 1;
                    state.queue.push(QueuedJob {
                        request,
                        sink: Arc::clone(&sink),
                        cancel: cancel.clone(),
                        report_tx,
                        done: Arc::clone(&done),
                        seq,
                        recovered: false,
                        enqueued: Instant::now(),
                    });
                    JobHandle::new(sink, cancel, events, report_rx, done)
                },
            )
            .collect();
        drop(state);
        self.shared.count_admitted(false, handles.len() as u64);
        self.shared.work_ready.notify_all();
        Ok(handles)
    }

    /// [`Scheduler::try_submit`], returning the request on rejection so
    /// the blocking path can retry it.
    // The large Err is the point: rejection hands the request back so
    // `submit` can retry it without a clone on the admission fast path.
    #[allow(clippy::result_large_err)]
    fn admit(
        &self,
        request: AggregationRequest,
        recovered: bool,
    ) -> Result<JobHandle, (AggregationRequest, AdmissionError)> {
        let (event_tx, events) = mpsc::channel();
        let (report_tx, report_rx) = mpsc::channel();
        let sink = Arc::new(IncumbentSink::with_sender(event_tx));
        let cancel = CancelToken::new();
        let done = Arc::new(AtomicBool::new(false));
        let mut state = self.shared.state.lock().expect("scheduler state poisoned");
        if state.shutdown {
            return Err((request, AdmissionError::ShuttingDown));
        }
        if state.queue.len() >= self.shared.config.queue_capacity {
            let err = AdmissionError::QueueFull {
                queued: state.queue.len(),
                capacity: self.shared.config.queue_capacity,
                retry_after: retry_hint(&state),
            };
            return Err((request, err));
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.queue.push(QueuedJob {
            request,
            sink: Arc::clone(&sink),
            cancel: cancel.clone(),
            report_tx,
            done: Arc::clone(&done),
            seq,
            recovered,
            enqueued: Instant::now(),
        });
        drop(state);
        self.shared.count_admitted(recovered, 1);
        self.shared.work_ready.notify_one();
        Ok(JobHandle::new(sink, cancel, events, report_rx, done))
    }

    /// Admit `request`, blocking until the queue has room (the in-process
    /// compatibility path; remote front ends use [`Scheduler::try_submit`]
    /// and shed instead).
    ///
    /// # Panics
    ///
    /// Panics if the scheduler is shut down while waiting — submitting to
    /// an engine being torn down is a caller bug.
    pub fn submit(&self, request: AggregationRequest) -> JobHandle {
        self.submit_class(request, false)
    }

    /// Blocking admission into the **recovered** class: the job runs
    /// before every fresh submission, FIFO among recovered jobs (see the
    /// module docs). This is the restart-recovery path — the service
    /// re-admits journaled jobs with it in ascending job-id order, which
    /// makes the post-restart execution order a deterministic function of
    /// the journal. Blocking (rather than shedding) is deliberate:
    /// recovery happens before the server starts accepting traffic, and a
    /// journal holding more interrupted jobs than the queue bound must
    /// wait for room, not drop work it promised to finish.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler is shut down while waiting, exactly like
    /// [`Scheduler::submit`].
    pub fn submit_recovered(&self, request: AggregationRequest) -> JobHandle {
        self.submit_class(request, true)
    }

    fn submit_class(&self, request: AggregationRequest, recovered: bool) -> JobHandle {
        let mut request = request;
        loop {
            match self.admit(request, recovered) {
                Ok(handle) => return handle,
                Err((_, AdmissionError::ShuttingDown)) => {
                    panic!("Engine::submit on a shut-down engine")
                }
                Err((rejected, AdmissionError::QueueFull { .. })) => {
                    request = rejected;
                    let state = self.shared.state.lock().expect("scheduler state poisoned");
                    drop(
                        self.shared
                            .space_ready
                            .wait_while(state, |s| {
                                !s.shutdown && s.queue.len() >= self.shared.config.queue_capacity
                            })
                            .expect("scheduler state poisoned"),
                    );
                }
            }
        }
    }

    /// Current queue/running counts.
    pub fn stats(&self) -> SchedulerStats {
        let state = self.shared.state.lock().expect("scheduler state poisoned");
        SchedulerStats {
            queued: state.queue.len(),
            running: state.running.len(),
            queue_capacity: self.shared.config.queue_capacity,
            max_concurrent: self.shared.config.max_concurrent,
        }
    }

    /// The scheduler's shape.
    pub fn config(&self) -> SchedulerConfig {
        self.shared.config
    }

    /// Stop accepting work, cooperatively cancel every queued *and*
    /// running job, and join the workers once the queue has drained
    /// (cancelled queued jobs still execute — each stops at its first
    /// checkpoint — so every outstanding [`JobHandle`] resolves).
    pub fn shutdown_drain(&self) {
        let (queued, running) = {
            let mut state = self.shared.state.lock().expect("scheduler state poisoned");
            state.shutdown = true;
            for job in &state.queue {
                job.cancel.cancel();
            }
            for (_, _, token) in &state.running {
                token.cancel();
            }
            (state.queue.len() as u64, state.running.len() as u64)
        };
        let drain_help = "Jobs cooperatively cancelled by shutdown_drain, by stage.";
        self.shared
            .metrics
            .counter(
                "rawt_jobs_drain_cancelled_total",
                drain_help,
                &[("stage", "queued")],
            )
            .add(queued);
        self.shared
            .metrics
            .counter(
                "rawt_jobs_drain_cancelled_total",
                drain_help,
                &[("stage", "running")],
            )
            .add(running);
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker list poisoned"));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for Scheduler {
    /// Dropping the scheduler (usually via its [`Engine`]) signals
    /// shutdown but does **not** join or cancel: workers drain the
    /// remaining queue normally and then exit, so a handle obtained from a
    /// since-dropped engine still yields its report
    /// (`Engine::new().submit(…)` is a supported pattern).
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("scheduler state poisoned");
        state.shutdown = true;
        drop(state);
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
    }
}

/// Retry hint for a shed submission: the shortest declared budget among
/// the jobs ahead (queued and running) approximates when a slot frees up;
/// clamped to `[1s, 60s]` so the hint is neither zero nor absurd.
fn retry_hint(state: &State) -> Duration {
    let queued = state.queue.iter().filter_map(|j| j.request.budget);
    let running = state.running.iter().filter_map(|(_, budget, _)| *budget);
    let shortest = queued
        .chain(running)
        .min()
        .unwrap_or(Duration::from_secs(1));
    shortest.clamp(Duration::from_secs(1), Duration::from_secs(60))
}

fn worker_loop(shared: &Shared, cache: &Arc<MatrixCache>) {
    let queue_wait_hist = shared.metrics.histogram(
        "rawt_queue_wait_seconds",
        "Time jobs spent in the admission queue before a worker picked them up.",
        &[],
    );
    loop {
        let job = {
            let mut state = shared.state.lock().expect("scheduler state poisoned");
            let job = loop {
                if let Some(i) = next_index(&state.queue) {
                    break state.queue.swap_remove(i);
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .expect("scheduler state poisoned");
            };
            // Register as running inside the same critical section that
            // dequeues, so a concurrent drain never misses the job's token.
            state
                .running
                .push((job.seq, job.request.budget, job.cancel.clone()));
            job
        };
        shared.queued_gauge.dec();
        shared.running_gauge.inc();
        let queue_wait = job.enqueued.elapsed();
        queue_wait_hist.record(queue_wait);
        shared.space_ready.notify_one();
        let result = catch_unwind(AssertUnwindSafe(|| {
            Engine::execute(
                &job.request,
                cache,
                &shared.metrics,
                &job.sink,
                job.cancel.clone(),
                queue_wait,
            )
        }));
        if result.is_err() {
            // A panicking kernel never reached `close`; end the event
            // stream so subscribers draining it are not stranded.
            job.sink.close();
        }
        // The receiver may be gone (handle dropped) — that is fine.
        let _ = job.report_tx.send(result);
        job.done.store(true, Ordering::Release);
        shared.running_gauge.dec();
        let mut state = shared.state.lock().expect("scheduler state poisoned");
        state.running.retain(|(seq, _, _)| *seq != job.seq);
    }
}

/// Index of the queued job with the smallest (class, budget, seq) key.
/// Linear
/// scan: the queue is bounded and small, and pops are rare relative to
/// the work each job represents.
fn next_index(queue: &[QueuedJob]) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .min_by_key(|(_, j)| j.key())
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AlgoSpec, Outcome};
    use crate::parse::parse_ranking;
    use crate::Dataset;

    fn tiny_dataset() -> Dataset {
        Dataset::new(vec![
            parse_ranking("[{0},{3},{1,2}]").unwrap(),
            parse_ranking("[{0},{1,2},{3}]").unwrap(),
            parse_ranking("[{3},{0,2},{1}]").unwrap(),
        ])
        .unwrap()
    }

    fn sched(max_concurrent: usize, queue_capacity: usize) -> Scheduler {
        Scheduler::new(
            SchedulerConfig {
                max_concurrent,
                queue_capacity,
            },
            Arc::new(MatrixCache::new()),
            Arc::new(MetricsRegistry::new()),
        )
    }

    #[test]
    fn runs_a_job_to_completion() {
        let s = sched(1, 4);
        let handle = s
            .try_submit(AggregationRequest::new(tiny_dataset(), AlgoSpec::Exact))
            .expect("admitted");
        let report = handle.wait();
        assert_eq!(report.score, 5);
        assert_eq!(report.outcome, Outcome::Optimal);
    }

    #[test]
    fn sheds_load_when_the_queue_is_full_without_touching_running_jobs() {
        let s = sched(1, 1);
        // Occupy the single worker with a long multi-start job; its
        // per-repeat checkpoints make it promptly cancellable afterwards.
        let blocker = s
            .try_submit(AggregationRequest::new(
                tiny_dataset(),
                AlgoSpec::BestOf {
                    base: Box::new(AlgoSpec::KwikSort),
                    runs: 200_000,
                },
            ))
            .expect("admitted");
        // Wait until it is actually running so the next job queues.
        while s.stats().running == 0 {
            std::thread::yield_now();
        }
        let queued = s
            .try_submit(AggregationRequest::new(tiny_dataset(), AlgoSpec::Exact))
            .expect("queue has room");
        let shed = s.try_submit(AggregationRequest::new(tiny_dataset(), AlgoSpec::Borda));
        match shed {
            Err(AdmissionError::QueueFull {
                queued: q,
                capacity,
                retry_after,
            }) => {
                assert_eq!((q, capacity), (1, 1));
                assert!(retry_after >= Duration::from_secs(1));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        blocker.cancel();
        let cancelled = blocker.wait();
        assert_eq!(cancelled.outcome, Outcome::Cancelled);
        // The queued job was never dropped: it runs after the blocker.
        assert_eq!(queued.wait().score, 5);
    }

    #[test]
    fn queued_jobs_run_shortest_declared_budget_first() {
        let s = sched(1, 8);
        let blocker = s
            .try_submit(AggregationRequest::new(
                tiny_dataset(),
                AlgoSpec::BestOf {
                    base: Box::new(AlgoSpec::KwikSort),
                    runs: 200_000,
                },
            ))
            .expect("admitted");
        while s.stats().running == 0 {
            std::thread::yield_now();
        }
        // Queue: no-budget first, then long, then short — they must run
        // short, long, no-budget.
        let unbounded = s
            .try_submit(AggregationRequest::new(tiny_dataset(), AlgoSpec::Exact))
            .expect("admitted");
        let long = s
            .try_submit(
                AggregationRequest::new(tiny_dataset(), AlgoSpec::Exact)
                    .with_budget(Duration::from_secs(600)),
            )
            .expect("admitted");
        let short = s
            .try_submit(
                AggregationRequest::new(tiny_dataset(), AlgoSpec::Exact)
                    .with_budget(Duration::from_secs(1)),
            )
            .expect("admitted");
        // Inspect the drain order through the queue itself: pop order is
        // determined by `next_index`, exercised by releasing the worker.
        {
            let state = s.shared.state.lock().unwrap();
            let order: Vec<u64> = {
                let mut q: Vec<_> = state.queue.iter().map(|j| j.key()).collect();
                q.sort();
                q.into_iter().map(|(_, _, seq)| seq).collect()
            };
            assert_eq!(order, vec![3, 2, 1], "short budget first, FIFO last");
        }
        blocker.cancel();
        let _ = blocker.wait();
        for h in [short, long, unbounded] {
            assert_eq!(h.wait().score, 5);
        }
    }

    #[test]
    fn recovered_jobs_run_before_fresh_ones_in_fifo_order() {
        let s = sched(1, 8);
        let blocker = s
            .try_submit(AggregationRequest::new(
                tiny_dataset(),
                AlgoSpec::BestOf {
                    base: Box::new(AlgoSpec::KwikSort),
                    runs: 200_000,
                },
            ))
            .expect("admitted");
        while s.stats().running == 0 {
            std::thread::yield_now();
        }
        // A fresh short-budget job would normally overtake everything;
        // recovered jobs (even budget-less ones, admitted later) must
        // still come first, in their own admission order.
        let fresh = s
            .try_submit(
                AggregationRequest::new(tiny_dataset(), AlgoSpec::Exact)
                    .with_budget(Duration::from_secs(1)),
            )
            .expect("admitted");
        let recovered_a = s.submit_recovered(
            AggregationRequest::new(tiny_dataset(), AlgoSpec::Exact)
                .with_budget(Duration::from_secs(600)),
        );
        let recovered_b =
            s.submit_recovered(AggregationRequest::new(tiny_dataset(), AlgoSpec::Exact));
        {
            let state = s.shared.state.lock().unwrap();
            let order: Vec<u64> = {
                let mut q: Vec<_> = state.queue.iter().map(|j| j.key()).collect();
                q.sort();
                q.into_iter().map(|(_, _, seq)| seq).collect()
            };
            // seqs: blocker=0 (running), fresh=1, recovered_a=2, recovered_b=3.
            assert_eq!(order, vec![2, 3, 1], "recovered FIFO first, then fresh");
        }
        blocker.cancel();
        let _ = blocker.wait();
        for h in [recovered_a, recovered_b, fresh] {
            assert_eq!(h.wait().score, 5);
        }
    }

    #[test]
    fn batch_admission_is_all_or_nothing() {
        let s = sched(1, 3);
        let blocker = s
            .try_submit(AggregationRequest::new(
                tiny_dataset(),
                AlgoSpec::BestOf {
                    base: Box::new(AlgoSpec::KwikSort),
                    runs: 200_000,
                },
            ))
            .expect("admitted");
        while s.stats().running == 0 {
            std::thread::yield_now();
        }
        // Two slots occupied by a pair-batch: fits (2 ≤ 3).
        let pair = s
            .try_submit_batch(vec![
                AggregationRequest::new(tiny_dataset(), AlgoSpec::Exact),
                AggregationRequest::new(tiny_dataset(), AlgoSpec::Exact),
            ])
            .expect("batch of two fits");
        assert_eq!(pair.len(), 2);
        // A second pair would need 4 total slots: the *whole* batch is
        // shed, leaving the queue exactly as it was.
        let shed = s.try_submit_batch(vec![
            AggregationRequest::new(tiny_dataset(), AlgoSpec::Exact),
            AggregationRequest::new(tiny_dataset(), AlgoSpec::Borda),
        ]);
        match shed {
            Err(AdmissionError::QueueFull {
                queued, capacity, ..
            }) => assert_eq!((queued, capacity), (2, 3)),
            other => panic!("expected QueueFull, got {:?}", other.map(|h| h.len())),
        }
        assert_eq!(s.stats().queued, 2, "shed batch admitted nothing");
        // A single job still fits in the remaining slot.
        let single = s
            .try_submit(AggregationRequest::new(tiny_dataset(), AlgoSpec::Exact))
            .expect("one slot left");
        blocker.cancel();
        let _ = blocker.wait();
        for h in pair {
            assert_eq!(h.wait().score, 5);
        }
        assert_eq!(single.wait().score, 5);
    }

    #[test]
    fn drain_cancels_queued_and_running_and_resolves_every_handle() {
        let s = sched(1, 8);
        let running = s
            .try_submit(AggregationRequest::new(
                tiny_dataset(),
                AlgoSpec::BestOf {
                    base: Box::new(AlgoSpec::KwikSort),
                    runs: 200_000,
                },
            ))
            .expect("admitted");
        while s.stats().running == 0 {
            std::thread::yield_now();
        }
        let queued = s
            .try_submit(AggregationRequest::new(
                tiny_dataset(),
                AlgoSpec::BestOf {
                    base: Box::new(AlgoSpec::KwikSort),
                    runs: 200_000,
                },
            ))
            .expect("admitted");
        s.shutdown_drain();
        assert_eq!(running.wait().outcome, Outcome::Cancelled);
        // The queued job was cancelled before it started; it still
        // resolves (stopping at its first checkpoint).
        let report = queued.wait();
        assert_eq!(report.outcome, Outcome::Cancelled);
        // After a drain, new submissions are refused.
        assert_eq!(
            s.try_submit(AggregationRequest::new(tiny_dataset(), AlgoSpec::Borda))
                .err(),
            Some(AdmissionError::ShuttingDown)
        );
    }
}
