//! Aggregation requests: what a caller asks the engine to compute.
//!
//! A request is the serving-side unit of work: one dataset, one
//! [`AlgoSpec`], a seed, an optional time budget, and a parallelism
//! policy. [`BatchBuilder`] expands one dataset and many specs into a
//! request batch — the shape the paper's §6 harness (one panel per
//! dataset) and the `rawt compare` front door both have.

use super::spec::{AlgoSpec, ExecPolicy, KernelLane, LanePolicy};
use crate::algorithms::WarmStart;
use crate::dataset::Dataset;
use crate::normalize::{projection, unification, Normalized};
use crate::pairs::CostMatrix;
use crate::ranking::Ranking;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

/// How rankings over different element sets are made comparable before
/// aggregation (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// §5.1 unification: every ranking keeps all elements; missing ones
    /// join a trailing bucket.
    #[default]
    Unification,
    /// §5.1 projection: keep only the elements present in every ranking.
    Projection,
}

impl Normalization {
    /// Apply the policy to raw (possibly incomplete) rankings. `None` when
    /// the result would be empty (projection with an empty intersection).
    pub fn apply(&self, raw: &[Ranking]) -> Option<Normalized> {
        match self {
            Normalization::Unification => unification(raw),
            Normalization::Projection => projection(raw),
        }
    }
}

impl fmt::Display for Normalization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Normalization::Unification => write!(f, "unify"),
            Normalization::Projection => write!(f, "project"),
        }
    }
}

impl FromStr for Normalization {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "unify" | "unification" => Ok(Normalization::Unification),
            "project" | "projection" => Ok(Normalization::Projection),
            other => Err(format!(
                "unknown normalization {other:?} (use unify|project)"
            )),
        }
    }
}

/// One unit of engine work: aggregate `dataset` with `spec`.
///
/// Requests are cheap to clone (the dataset is shared through an [`Arc`])
/// and carry everything the run needs, so outcome state never leaks
/// between requests — the report the engine returns is a pure function of
/// the request in deadline-free runs.
#[derive(Debug, Clone)]
pub struct AggregationRequest {
    /// The (already normalized, dense) dataset to aggregate.
    pub dataset: Arc<Dataset>,
    /// Which algorithm to run.
    pub spec: AlgoSpec,
    /// Seed for the run's RNG streams.
    pub seed: u64,
    /// Wall-clock budget; the run starts the clock when it begins
    /// executing (the paper's two-hour rule, §6.2.4).
    pub budget: Option<Duration>,
    /// Whether the algorithm may parallelize internally.
    pub policy: ExecPolicy,
    /// A previous consensus seeding this re-solve, if any (see
    /// [`WarmStart`] for the per-algorithm contract). The engine validates
    /// it against the dataset before attaching; an invalid hint is
    /// silently dropped rather than poisoning the run.
    pub warm_start: Option<WarmStart>,
    /// An already-built cost matrix for `dataset`, if the caller holds
    /// one — a [`crate::session::DatasetSession`] maintains it by `O(n²)`
    /// delta patches, so a re-solve must not pay the engine's `O(m·n²)`
    /// rebuild. Primes the engine's fingerprint-keyed cache; it MUST
    /// equal `CostMatrix::build(&dataset)` bit for bit (debug-asserted,
    /// and property-tested for the session's patches).
    pub cost_matrix: Option<Arc<CostMatrix>>,
}

impl AggregationRequest {
    /// A request with the default seed (42), no budget, and the parallel
    /// execution policy.
    pub fn new(dataset: impl Into<Arc<Dataset>>, spec: AlgoSpec) -> Self {
        AggregationRequest {
            dataset: dataset.into(),
            spec,
            seed: 42,
            budget: None,
            policy: ExecPolicy::default(),
            warm_start: None,
            cost_matrix: None,
        }
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the wall-clock budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Set the parallelism policy.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Set only the pairwise-cost lane of the policy (threading is kept).
    pub fn with_lane(mut self, lane: LanePolicy) -> Self {
        self.policy = self.policy.with_lane(lane);
        self
    }

    /// The [`KernelLane`] the engine will resolve this request to —
    /// exposed so callers (and tests) can predict lane selection without
    /// running: a supplied [`AggregationRequest::cost_matrix`] pins dense,
    /// otherwise [`LanePolicy::resolve`] decides from spec and size.
    pub fn resolved_lane(&self) -> KernelLane {
        self.policy
            .lane
            .resolve(&self.spec, self.dataset.n(), self.cost_matrix.is_some())
    }

    /// Seed the run from a previous consensus (a
    /// [`crate::session::DatasetSession`] supplies one per re-solve).
    pub fn with_warm_start(mut self, warm: WarmStart) -> Self {
        self.warm_start = Some(warm);
        self
    }

    /// Hand the engine an already-built cost matrix for the dataset
    /// instead of letting it rebuild one (see
    /// [`AggregationRequest::cost_matrix`] for the equality contract).
    pub fn with_cost_matrix(mut self, matrix: Arc<CostMatrix>) -> Self {
        self.cost_matrix = Some(matrix);
        self
    }

    /// Start a batch of requests over one dataset.
    pub fn batch(dataset: impl Into<Arc<Dataset>>) -> BatchBuilder {
        BatchBuilder::new(dataset)
    }
}

/// Builder expanding one dataset and many specs into a request batch.
///
/// ```
/// use rank_core::engine::{AggregationRequest, AlgoSpec};
/// use rank_core::{Dataset, Ranking};
///
/// let data = Dataset::new(vec![
///     Ranking::from_slices(&[&[0], &[1, 2]]).unwrap(),
///     Ranking::from_slices(&[&[2], &[0, 1]]).unwrap(),
/// ])
/// .unwrap();
/// let requests = AggregationRequest::batch(data)
///     .spec(AlgoSpec::BioConsert)
///     .spec(AlgoSpec::Borda)
///     .seed(7)
///     .build();
/// assert_eq!(requests.len(), 2);
/// assert_eq!(requests[0].seed, 7);
/// ```
#[derive(Debug, Clone)]
pub struct BatchBuilder {
    dataset: Arc<Dataset>,
    specs: Vec<AlgoSpec>,
    seed: u64,
    budget: Option<Duration>,
    policy: ExecPolicy,
}

impl BatchBuilder {
    /// A batch over an already normalized dataset.
    pub fn new(dataset: impl Into<Arc<Dataset>>) -> Self {
        BatchBuilder {
            dataset: dataset.into(),
            specs: Vec::new(),
            seed: 42,
            budget: None,
            policy: ExecPolicy::default(),
        }
    }

    /// A batch over raw rankings (possibly covering different element
    /// sets), normalized by `how` first. Returns the builder plus the
    /// [`Normalized`] mapping so callers can denormalize consensus
    /// rankings for display; `None` when normalization empties the data.
    pub fn normalized(raw: &[Ranking], how: Normalization) -> Option<(Self, Normalized)> {
        let norm = how.apply(raw)?;
        Some((BatchBuilder::new(norm.dataset.clone()), norm))
    }

    /// Add one spec to the batch.
    pub fn spec(mut self, spec: AlgoSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Add many specs to the batch.
    pub fn specs(mut self, specs: impl IntoIterator<Item = AlgoSpec>) -> Self {
        self.specs.extend(specs);
        self
    }

    /// Seed shared by every request of the batch (per-algorithm RNG
    /// streams are decorrelated by the engine, so one seed is enough).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Wall-clock budget applied to every request of the batch.
    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Parallelism policy applied to every request of the batch.
    pub fn policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Expand into one [`AggregationRequest`] per spec, in insertion
    /// order, all sharing the dataset `Arc`.
    pub fn build(self) -> Vec<AggregationRequest> {
        self.specs
            .into_iter()
            .map(|spec| AggregationRequest {
                dataset: Arc::clone(&self.dataset),
                spec,
                seed: self.seed,
                budget: self.budget,
                policy: self.policy,
                warm_start: None,
                cost_matrix: None,
            })
            .collect()
    }
}
