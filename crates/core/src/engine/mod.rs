//! The aggregation engine: a request/report serving layer over the
//! consensus kernels.
//!
//! Earlier revisions exposed the algorithm suite as research-script
//! plumbing: callers string-matched
//! [`ConsensusAlgorithm::name`](crate::algorithms::ConsensusAlgorithm::name)
//! against hard-coded panel vectors and read outcomes back out of shared
//! atomic flags on [`AlgoContext`] — which mis-attributed timeouts whenever
//! several algorithms shared one context family. This module is the
//! production front door replacing that (DESIGN.md §8):
//!
//! * [`AlgoSpec`] — typed, parse/display round-trippable algorithm names
//!   backed by a constructor [`registry`];
//! * [`AggregationRequest`] / [`ConsensusReport`] — everything a run needs
//!   in, everything it learned out (ranking, Kemeny score, gap, elapsed
//!   time, a per-request [`Outcome`], the spec and seed for provenance);
//! * [`Engine`] — [`Engine::run`] for one request, [`Engine::run_batch`]
//!   for concurrent execution of many requests over one shared
//!   fingerprint-keyed cost-matrix cache and a bounded worker pool;
//! * [`Engine::submit`] — the **anytime** path ([`job`], DESIGN.md §9):
//!   a [`JobHandle`] streaming [`Event`]s (started / strictly improving
//!   incumbents / finished), a harvestable best-so-far, cooperative
//!   cancellation, and a time-to-score [`ConsensusReport::trace`] in every
//!   report. `run`/`run_batch` are thin wrappers over submit + wait.
//!
//! # Quick example
//!
//! ```
//! use rank_core::engine::{AggregationRequest, AlgoSpec, Engine, Outcome};
//! use rank_core::{Dataset, Ranking};
//!
//! // The paper's §2.2 running example; its optimal consensus scores 5.
//! let data = Dataset::new(vec![
//!     Ranking::from_slices(&[&[0], &[3], &[1, 2]]).unwrap(),
//!     Ranking::from_slices(&[&[0], &[1, 2], &[3]]).unwrap(),
//!     Ranking::from_slices(&[&[3], &[0, 2], &[1]]).unwrap(),
//! ])
//! .unwrap();
//!
//! let engine = Engine::new();
//! let report = engine.run(&AggregationRequest::new(data, AlgoSpec::Exact));
//! assert_eq!(report.score, 5);
//! assert_eq!(report.outcome, Outcome::Optimal);
//! ```

pub mod job;
pub mod request;
pub mod scheduler;
pub mod spec;

pub use job::{CancelToken, Event, IncumbentSink, JobHandle, TracePoint};
pub use request::{AggregationRequest, BatchBuilder, Normalization};
pub use scheduler::{AdmissionError, SchedulerConfig, SchedulerStats, DEFAULT_QUEUE_CAPACITY};
pub use spec::{
    extended_panel, full_panel, paper_panel, registry, suggest, AlgoEntry, AlgoSpec, ExecPolicy,
    KernelLane, LanePolicy, SpecErrorKind, SpecParseError, Threading, DEFAULT_MIN_RUNS,
    DENSE_LANE_BUDGET_BYTES,
};

use crate::algorithms::{AlgoContext, MatrixCache};
use crate::parallel;
use crate::ranking::Ranking;
use crate::score;
use crate::telemetry::MetricsRegistry;
use scheduler::Scheduler;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How a request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The result was *proved* optimal: either the exact search completed
    /// within budget, or a certified lower bound met the incumbent score
    /// (`score == lower_bound` — the bound squeeze of DESIGN.md §11.2,
    /// which can certify even a timed-out run).
    Optimal,
    /// A best-effort heuristic result, completed within budget.
    Heuristic,
    /// The run hit its budget (or an internal cap) and returned its best
    /// incumbent — the paper reports these as "no result".
    TimedOut,
    /// The caller cancelled the job ([`JobHandle::cancel`]); the report
    /// carries the best incumbent published before the run stopped.
    Cancelled,
}

impl Outcome {
    /// Whether the run produced a within-budget result (the paper's
    /// tables count `TimedOut` as "no result"; a cancelled run is the
    /// caller's own cut, also not a completed result).
    pub fn completed(&self) -> bool {
        !matches!(self, Outcome::TimedOut | Outcome::Cancelled)
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Optimal => write!(f, "optimal"),
            Outcome::Heuristic => write!(f, "heuristic"),
            Outcome::TimedOut => write!(f, "timed out"),
            Outcome::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Where one job's wall-clock actually went, phase by phase — the
/// per-job counterpart of the engine's aggregate histograms (DESIGN.md
/// §15). Carried on every [`ConsensusReport`] and serialized into
/// `report_json`, so the breakdown survives the wire, the journal, and
/// `rawt aggregate --json` unchanged.
///
/// By construction [`PhaseBreakdown::solve`] equals
/// [`ConsensusReport::elapsed`] (both time exactly the kernel's `run`),
/// and the other phases are *additional* wall-clock around it — the sum
/// of all phases is the job's true end-to-end time, of which `elapsed`
/// is the solve share.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Time spent queued in the scheduler before a worker picked the job
    /// up (zero for inline [`Engine::run`] calls).
    pub queue_wait: Duration,
    /// Time to obtain the cost matrix: the `O(m·n²)` build, or the cache
    /// probe when [`PhaseBreakdown::matrix_cached`] is `true`.
    pub matrix_build: Duration,
    /// Whether the matrix came out of the shared [`MatrixCache`] instead
    /// of being built for this job.
    pub matrix_cached: bool,
    /// The kernel run itself — identical to [`ConsensusReport::elapsed`].
    pub solve: Duration,
    /// Time to serialize the report for the wire/journal. Zero on a
    /// freshly computed in-process report; measured and filled in by the
    /// shared serializer when the report is rendered to JSON.
    pub serialize: Duration,
}

impl PhaseBreakdown {
    /// End-to-end wall-clock: the sum of every phase.
    pub fn total(&self) -> Duration {
        self.queue_wait + self.matrix_build + self.solve + self.serialize
    }
}

/// Everything one request's run produced.
#[derive(Debug, Clone)]
pub struct ConsensusReport {
    /// The spec that ran (provenance).
    pub spec: AlgoSpec,
    /// The consensus ranking.
    pub ranking: Ranking,
    /// Generalized Kemeny score of `ranking` against the request dataset.
    pub score: u64,
    /// The pairwise-cost lane the run actually executed on (provenance:
    /// the *resolved* [`LanePolicy`], not the requested one — an explicit
    /// matrix-free request on an unsupported spec runs and reports dense).
    pub lane: KernelLane,
    /// Gap to the batch's reference score (proven optimum when one exists
    /// in the batch, otherwise the best score any batch member achieved —
    /// the paper's m-gap, §6.2.3). `None` for a lone [`Engine::run`] with
    /// nothing to compare against. Distinct from the *certified*
    /// per-event optimality gap `score − lower_bound`
    /// ([`Event::Incumbent`], [`ConsensusReport::lower_bound`]): the
    /// m-gap is relative to what the batch happened to find, the
    /// certified gap is an absolute proof.
    pub gap: Option<f64>,
    /// Best certified lower bound on the dataset's optimal Kemeny score
    /// the run proved (branch-and-bound frontier minima, Ailon's LP
    /// relaxation; `None` for heuristics, which prove nothing).
    /// Invariants, pinned by `tests/anytime_api.rs`: never above
    /// [`ConsensusReport::score`], and equal to it whenever
    /// [`ConsensusReport::outcome`] is [`Outcome::Optimal`].
    pub lower_bound: Option<u64>,
    /// Wall-clock time of this run.
    pub elapsed: Duration,
    /// Per-request outcome — never contaminated by sibling requests.
    pub outcome: Outcome,
    /// Seed the run used (provenance; same seed + spec ⇒ same report).
    pub seed: u64,
    /// The run's incumbent trace: the time-to-score curve of every strict
    /// improvement the algorithm published (strictly decreasing scores,
    /// ending at [`ConsensusReport::score`] — except for a completed
    /// Ailon run, whose LP-rounding result may legitimately end worse
    /// than the best-input incumbent it published early; see
    /// DESIGN.md §9.3). This is the paper's §6 quality-vs-time story per
    /// run, not just its endpoint. Observational: under parallel
    /// execution the *timings* may vary run to run even though
    /// ranking/score/outcome stay bit-identical for a fixed seed.
    pub trace: Vec<TracePoint>,
    /// Where this job's wall-clock went (queue wait, matrix build,
    /// solve, serialization) — see [`PhaseBreakdown`].
    pub phases: PhaseBreakdown,
}

impl ConsensusReport {
    /// The algorithm's display name as the paper's tables spell it.
    pub fn algorithm(&self) -> String {
        self.spec.paper_name()
    }

    /// Wall-clock time to the run's *first* incumbent — the anytime
    /// responsiveness metric (`None` for an empty trace).
    pub fn time_to_first_incumbent(&self) -> Option<Duration> {
        self.trace.first().map(|p| p.elapsed)
    }

    /// Wall-clock time to the run's *final* (best) incumbent — when the
    /// quality curve went flat, which can be far before
    /// [`ConsensusReport::elapsed`] for solvers that then only prove.
    pub fn time_to_final_incumbent(&self) -> Option<Duration> {
        self.trace.last().map(|p| p.elapsed)
    }

    /// The certified optimality gap `score − lower_bound`: the reported
    /// consensus is provably within this many cost units of optimal.
    /// `Some(0)` is a proof of optimality; `None` means the run proved no
    /// bound (every heuristic).
    pub fn certified_gap(&self) -> Option<u64> {
        self.lower_bound.map(|lb| self.score - lb)
    }
}

/// FNV-1a over a spec name; decorrelates per-algorithm RNG streams within
/// a batch that shares one seed.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A long-lived aggregation engine: a shared fingerprint-keyed cost-matrix
/// cache plus a bounded worker pool for batches.
///
/// The engine is the multi-tenant serving path: many requests — over the
/// same dataset or different ones — run concurrently, each with its *own*
/// outcome flags (so one request's timeout can never leak into a
/// neighbour's report) while `O(m·n²)` cost-matrix builds are shared
/// through [`MatrixCache`], at most one build per distinct dataset.
#[derive(Debug, Default)]
pub struct Engine {
    cache: Arc<MatrixCache>,
    workers: usize,
    /// Shape of the job scheduler ([`Engine::submit`] /
    /// [`Engine::try_submit`]); the scheduler itself is built lazily on
    /// the first submission so engines that only ever `run` pay nothing.
    sched_config: SchedulerConfig,
    sched: OnceLock<Scheduler>,
    /// The engine's telemetry registry (per-engine, not process-global:
    /// a restarted in-process server starts from zero instead of
    /// double-counting across generations).
    metrics: Arc<MetricsRegistry>,
}

impl Engine {
    /// An engine with the default worker-pool width
    /// ([`parallel::num_threads`]).
    pub fn new() -> Self {
        Engine::with_workers(parallel::num_threads())
    }

    /// An engine whose batches use at most `workers` concurrent requests
    /// (`0` and `1` both mean sequential). The job scheduler's concurrency
    /// cap follows the same width (queue bound:
    /// [`DEFAULT_QUEUE_CAPACITY`]); use [`Engine::with_scheduler`] to
    /// shape it independently.
    pub fn with_workers(workers: usize) -> Self {
        Engine::with_scheduler(
            workers,
            SchedulerConfig {
                max_concurrent: workers.max(1),
                queue_capacity: DEFAULT_QUEUE_CAPACITY,
            },
        )
    }

    /// An engine with an explicitly shaped job scheduler — the serving
    /// configuration (`rawt serve --max-jobs --queue` ends up here).
    /// Zero bounds are clamped to 1 up front, so the configuration read
    /// back is the one the scheduler will actually run with.
    pub fn with_scheduler(workers: usize, config: SchedulerConfig) -> Self {
        Engine {
            cache: Arc::new(MatrixCache::new()),
            workers: workers.max(1),
            sched_config: config.normalized(),
            sched: OnceLock::new(),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// The scheduler, created on first use.
    fn scheduler(&self) -> &Scheduler {
        self.sched.get_or_init(|| {
            Scheduler::new(
                self.sched_config,
                Arc::clone(&self.cache),
                Arc::clone(&self.metrics),
            )
        })
    }

    /// The engine's telemetry registry: every kernel, scheduler and cache
    /// observation this engine makes lands here. The service layers hang
    /// their own families (HTTP, journal, session) off the same registry
    /// so one `/metrics` render covers every tier.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Queue/running counts and the scheduler's bounds, for observability
    /// (the service's `/healthz`). Reports zeros against the configured
    /// bounds while no job was ever submitted.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        match self.sched.get() {
            Some(sched) => sched.stats(),
            None => SchedulerStats {
                queued: 0,
                running: 0,
                queue_capacity: self.sched_config.queue_capacity,
                max_concurrent: self.sched_config.max_concurrent,
            },
        }
    }

    /// Stop accepting submissions, cooperatively cancel every queued and
    /// running job, and block until the scheduler's workers have drained —
    /// the serving shutdown path (`rawt serve` on SIGINT). Blocking
    /// [`Engine::run`]/[`Engine::run_batch`] callers are unaffected; every
    /// outstanding [`JobHandle`] still resolves (with
    /// [`Outcome::Cancelled`] unless its job finished first).
    pub fn shutdown_drain(&self) {
        if let Some(sched) = self.sched.get() {
            sched.shutdown_drain();
            // The final telemetry flush: the drain's last act is saying
            // what it did, so an operator's terminal shows the tally even
            // when nobody scrapes /metrics again before exit.
            eprintln!(
                "rawt: telemetry: drained — {} jobs finished, {} cancelled at shutdown ({} queued, {} running)",
                self.metrics.counter_total("rawt_jobs_finished_total"),
                self.metrics.counter_total("rawt_jobs_drain_cancelled_total"),
                self.metrics
                    .counter_value("rawt_jobs_drain_cancelled_total", &[("stage", "queued")])
                    .unwrap_or(0),
                self.metrics
                    .counter_value("rawt_jobs_drain_cancelled_total", &[("stage", "running")])
                    .unwrap_or(0),
            );
        }
    }

    /// The engine's shared cost-matrix cache (observability: its
    /// [`MatrixCache::builds`] counter tells how many `O(m·n²)` builds the
    /// traffic so far has actually paid for).
    pub fn cache(&self) -> &MatrixCache {
        &self.cache
    }

    /// Submit one request as an **anytime job** on the engine's scheduler
    /// pool and return immediately with a [`JobHandle`].
    ///
    /// The handle streams a typed [`Event`] sequence (`Started`, one
    /// `Incumbent` per strict improvement, `Finished`), exposes the
    /// harvestable [`JobHandle::best_so_far`], and supports cooperative
    /// [`JobHandle::cancel`] — the run stops at its next
    /// [`checkpoint`](crate::algorithms::AlgoContext::checkpoint) and
    /// reports [`Outcome::Cancelled`] with the last published incumbent.
    /// `submit` + [`JobHandle::wait`] is bit-identical to [`Engine::run`]
    /// for a fixed seed (both drive the same execution core;
    /// property-tested).
    ///
    /// Jobs execute at most [`SchedulerConfig::max_concurrent`] at a time,
    /// shortest declared budget first (see [`scheduler`]); `Started` is
    /// emitted when the job leaves the queue. If the admission queue is
    /// full this call **blocks** until space frees up — load-shedding
    /// callers (the network service) use [`Engine::try_submit`] instead.
    pub fn submit(&self, request: AggregationRequest) -> JobHandle {
        self.scheduler().submit(request)
    }

    /// [`Engine::submit`] with load shedding: if the scheduler's admission
    /// queue is at capacity, the request is refused with
    /// [`AdmissionError::QueueFull`] (carrying a retry hint) instead of
    /// blocking. Running jobs are never affected by shed submissions.
    pub fn try_submit(&self, request: AggregationRequest) -> Result<JobHandle, AdmissionError> {
        self.scheduler().try_submit(request)
    }

    /// [`Engine::try_submit`] for a whole panel: the batch is admitted as
    /// one unit — either every request fits in the admission queue
    /// together or the whole batch is shed with
    /// [`AdmissionError::QueueFull`] — and returns one [`JobHandle`] per
    /// request, in request order. Requests sharing a dataset (the normal
    /// batch shape, [`BatchBuilder`]) share a single `O(m·n²)` cost-matrix
    /// build through the engine cache, exactly as [`Engine::run_batch`].
    pub fn try_submit_batch(
        &self,
        requests: Vec<AggregationRequest>,
    ) -> Result<Vec<JobHandle>, AdmissionError> {
        self.scheduler().try_submit_batch(requests)
    }

    /// [`Engine::submit`] into the scheduler's **recovered** class: the
    /// job runs before every fresh submission, FIFO among recovered jobs
    /// regardless of declared budgets. This is the restart-recovery path —
    /// a service replaying a durable journal re-admits interrupted jobs
    /// with it (in ascending journal order), so the post-restart execution
    /// order is a deterministic function of the journal and fresh traffic
    /// can never starve the work the restart promised to finish. Blocks
    /// when the queue is full (recovery must not drop jobs); panics if the
    /// engine is shut down while waiting, like [`Engine::submit`].
    pub fn submit_recovered(&self, request: AggregationRequest) -> JobHandle {
        self.scheduler().submit_recovered(request)
    }

    /// The scheduler's shape (configured bounds, whether or not the
    /// scheduler has been instantiated yet).
    pub fn scheduler_config(&self) -> SchedulerConfig {
        match self.sched.get() {
            Some(sched) => sched.config(),
            None => self.sched_config,
        }
    }

    /// Execute one request, blocking until done.
    ///
    /// The run gets fresh outcome flags and a worker RNG stream derived
    /// from `(request seed, spec paper name)`, so — without a budget — the
    /// report is a pure function of the request, bit-identical however
    /// many other requests run concurrently. Semantically identical to
    /// [`Engine::submit`] + [`JobHandle::wait`] (property-tested), but
    /// executes inline on the calling thread with a subscriber-less sink:
    /// no per-request thread, no event channel — the report still carries
    /// the full incumbent [`ConsensusReport::trace`].
    pub fn run(&self, request: &AggregationRequest) -> ConsensusReport {
        let sink = Arc::new(IncumbentSink::new());
        Engine::execute(
            request,
            &self.cache,
            &self.metrics,
            &sink,
            CancelToken::new(),
            Duration::ZERO,
        )
    }

    /// The synchronous core every job runs: build context + matrix, run
    /// the kernel, reconcile the result with the incumbent sink, emit
    /// lifecycle events, produce the report (with its [`PhaseBreakdown`])
    /// and record the run into `metrics`. `queue_wait` is how long the
    /// job sat in the scheduler's queue (zero for inline runs); it lands
    /// in the phase breakdown — the scheduler records the queue-wait
    /// histogram itself, at the point of measurement.
    pub(crate) fn execute(
        request: &AggregationRequest,
        cache: &Arc<MatrixCache>,
        metrics: &MetricsRegistry,
        sink: &Arc<IncumbentSink>,
        cancel: CancelToken,
        queue_wait: Duration,
    ) -> ConsensusReport {
        let algo_name = request.spec.paper_name();
        let algo_label: &[(&str, &str)] = &[("algo", &algo_name)];
        metrics
            .counter(
                "rawt_jobs_started_total",
                "Jobs whose execution began, by algorithm.",
                algo_label,
            )
            .inc();
        sink.emit(Event::Started {
            spec: request.spec.clone(),
            seed: request.seed,
        });
        let base = AlgoContext::with_cache(request.seed, Arc::clone(cache));
        let mut ctx = base.worker(hash_name(&request.spec.paper_name()));
        ctx.attach_sink(Arc::clone(sink));
        ctx.set_cancel_token(cancel);
        // Resolve the pairwise-cost lane (DESIGN.md §16): a caller-supplied
        // matrix pins dense, otherwise policy × spec × size decide. The
        // resolved lane is the report's provenance, not the requested one.
        let lane = request.policy.lane.resolve(
            &request.spec,
            request.dataset.n(),
            request.cost_matrix.is_some(),
        );
        ctx.set_lane(lane);
        metrics
            .counter(
                "rawt_kernel_lane_total",
                "Jobs executed, by resolved pairwise-cost lane.",
                &[("lane", lane.as_str())],
            )
            .inc();
        // A caller-supplied matrix (a session's delta-patched one) primes
        // the cache, so the `cost_matrix` call below — and every kernel's
        // — hits instead of paying the `O(m·n²)` rebuild.
        if let Some(prebuilt) = &request.cost_matrix {
            cache.insert(&request.dataset, Arc::clone(prebuilt));
        }
        // The matrix-free lane never touches the cache: no build, no probe,
        // `matrix_build` ≈ 0 and the builds counter stays untouched.
        let matrix_start = Instant::now();
        let (matrix, built) = match lane {
            KernelLane::Dense => {
                let (matrix, built) = cache.get_with_flag(&request.dataset);
                (Some(matrix), built)
            }
            KernelLane::MatrixFree => (None, false),
        };
        let matrix_build = matrix_start.elapsed();
        if matrix.is_some() {
            if built {
                metrics
                    .counter(
                        "rawt_matrix_builds_total",
                        "O(m*n^2) cost-matrix builds actually performed.",
                        &[],
                    )
                    .inc();
                metrics
                    .histogram(
                        "rawt_matrix_build_seconds",
                        "Cost-matrix build latency (cache misses only).",
                        &[],
                    )
                    .record(matrix_build);
            } else {
                metrics
                    .counter(
                        "rawt_matrix_cache_hits_total",
                        "Jobs that found their cost matrix already cached.",
                        &[],
                    )
                    .inc();
            }
        }
        // Warm-start hint: validated against the dataset and rescored
        // against this run's substrate (a stale caller-supplied score could
        // otherwise let an exact solver prune below the true optimum).
        // An incomplete hint is dropped — a cold run is always correct.
        if let Some(warm) = &request.warm_start {
            if request.dataset.is_complete_ranking(&warm.ranking) {
                let score = match &matrix {
                    Some(matrix) => matrix.score(&warm.ranking),
                    None => score::kemeny_score(&warm.ranking, &request.dataset),
                };
                ctx.set_warm_start(Arc::new(crate::algorithms::WarmStart {
                    ranking: warm.ranking.clone(),
                    score,
                }));
            }
        }
        let algo = request.spec.build(request.policy);
        if let Some(budget) = request.budget {
            ctx.deadline = Some(Instant::now() + budget);
        }
        let start = Instant::now();
        let ranking = algo.run(&request.dataset, &mut ctx);
        let elapsed = start.elapsed();
        debug_assert!(request.dataset.is_complete_ranking(&ranking));
        // Both scorers compute the same exact integer (property-tested);
        // the matrix-free path is O(m·n log n) instead of resident-O(n²).
        let score = match &matrix {
            Some(matrix) => matrix.score(&ranking),
            None => score::kemeny_score(&ranking, &request.dataset),
        };
        // Publish the final result too, so one-shot algorithms (Borda,
        // MEDRank, …) still yield a one-point trace and every trace ends
        // at the reported score.
        ctx.offer_incumbent(&ranking, score);
        // A stopped run may hand back a weaker state than the best
        // incumbent it already published (e.g. cancel lands between two
        // BioConsert starts): such reports carry the best known, so a
        // cancelled job's score always equals its last `Incumbent` event.
        // Completed runs keep the kernel's own result untouched — that is
        // the bit-identical contract with the pre-anytime engine.
        let stopped = ctx.cancelled() || ctx.timed_out();
        let (ranking, score) = match sink.best_so_far() {
            Some((best, incumbent)) if stopped && best < score => (incumbent, best),
            _ => (ranking, score),
        };
        // The bound squeeze (DESIGN.md §11.2): a certified lower bound
        // meeting the reported score proves optimality even when the
        // search itself was cut off — the honest upgrade a timed-out
        // exact run earns when only its *proof*, not its answer, was
        // incomplete. A cancelled run stays `Cancelled`: the caller asked
        // for the cut and outcome precedence reports their intent.
        let certified = sink.lower_bound() == Some(score);
        let outcome = if ctx.cancelled() {
            Outcome::Cancelled
        } else if ctx.proved_optimal() || certified {
            Outcome::Optimal
        } else if ctx.timed_out() {
            Outcome::TimedOut
        } else {
            Outcome::Heuristic
        };
        // Proof of optimality *is* a lower bound of `score`: publish it,
        // so the report, the trace's subscribers, and the wire stream all
        // agree that optimal ⇒ lower_bound == score (even for solvers
        // that prove by exhaustion without ever offering a bound).
        if outcome == Outcome::Optimal {
            sink.offer_lower_bound(score);
        }
        let report = ConsensusReport {
            spec: request.spec.clone(),
            ranking,
            score,
            lane,
            gap: if outcome == Outcome::Optimal {
                Some(0.0)
            } else {
                None
            },
            lower_bound: sink.lower_bound(),
            elapsed,
            outcome,
            seed: request.seed,
            trace: sink.trace(),
            phases: PhaseBreakdown {
                queue_wait,
                matrix_build,
                // Matrix-free runs have no matrix to cache: report false,
                // not "hit" (there was neither a build nor a probe).
                matrix_cached: matrix.is_some() && !built,
                solve: elapsed,
                serialize: Duration::ZERO,
            },
        };
        let outcome_label = match outcome {
            Outcome::Optimal => "optimal",
            Outcome::Heuristic => "heuristic",
            Outcome::TimedOut => "timed_out",
            Outcome::Cancelled => "cancelled",
        };
        metrics
            .counter(
                "rawt_jobs_finished_total",
                "Jobs finished, by algorithm and outcome.",
                &[("algo", &algo_name), ("outcome", outcome_label)],
            )
            .inc();
        metrics
            .histogram(
                "rawt_solve_seconds",
                "Kernel solve latency, by algorithm (equals report elapsed).",
                algo_label,
            )
            .record(elapsed);
        if let Some(t) = report.time_to_first_incumbent() {
            metrics
                .histogram(
                    "rawt_time_to_first_incumbent_seconds",
                    "Time to the first published incumbent, by algorithm.",
                    algo_label,
                )
                .record(t);
        }
        if let Some(t) = report.time_to_final_incumbent() {
            metrics
                .histogram(
                    "rawt_time_to_final_incumbent_seconds",
                    "Time to the final (best) incumbent, by algorithm.",
                    algo_label,
                )
                .record(t);
        }
        if outcome == Outcome::Optimal {
            metrics
                .histogram(
                    "rawt_time_to_certified_seconds",
                    "Solve time of runs that ended provably optimal, by algorithm.",
                    algo_label,
                )
                .record(elapsed);
        }
        metrics
            .counter(
                "rawt_checkpoints_total",
                "Cooperative checkpoint polls performed by kernels, by algorithm.",
                algo_label,
            )
            .add(ctx.checkpoints());
        sink.emit(Event::Finished(outcome));
        sink.close();
        report
    }

    /// Execute a batch of requests concurrently on the bounded worker
    /// pool, one [`ConsensusReport`] per request, in request order.
    ///
    /// Requests over the same dataset share a single cost-matrix build
    /// through the engine cache. After the runs, each report's
    /// [`ConsensusReport::gap`] is filled in against its dataset's
    /// reference score: a proven optimum when some batch member proved
    /// one, otherwise the best score achieved (m-gap).
    pub fn run_batch(&self, requests: &[AggregationRequest]) -> Vec<ConsensusReport> {
        let mut reports =
            parallel::par_map_slice(requests, self.workers.min(requests.len()), |_, req| {
                self.run(req)
            });
        // Gap pass: group requests by dataset content fingerprint (the
        // same key the matrix cache uses), so a mixed-dataset batch gets
        // one reference per dataset.
        let keys: Vec<_> = requests
            .iter()
            .map(|r| MatrixCache::fingerprint(&r.dataset))
            .collect();
        let mut seen: Vec<_> = Vec::new();
        for key in &keys {
            if seen.contains(key) {
                continue;
            }
            seen.push(*key);
            let members: Vec<usize> = (0..keys.len()).filter(|&i| keys[i] == *key).collect();
            let proved = members
                .iter()
                .filter(|&&i| reports[i].outcome == Outcome::Optimal)
                .map(|&i| reports[i].score)
                .min();
            // Without a proven optimum, the m-gap reference is the best
            // score any member achieved — *including* timed-out
            // incumbents, so the reference is a true lower bound of the
            // group and no gap can come out negative.
            let reference = proved.unwrap_or_else(|| {
                members
                    .iter()
                    .map(|&i| reports[i].score)
                    .min()
                    .expect("group is non-empty")
            });
            for &i in &members {
                let report = &mut reports[i];
                // The paper counts timed-out runs as "no result": their
                // incumbent score is reported but not gap-ranked. A zero
                // reference with a nonzero score would make the gap
                // infinite; leave it undefined instead of panicking.
                report.gap = if !report.outcome.completed() {
                    None
                } else if reference == 0 {
                    (report.score == 0).then_some(0.0)
                } else {
                    Some(score::gap(report.score, reference))
                };
            }
        }
        reports
    }
}
