//! Anytime jobs: streaming incumbents, cooperative cancellation, and the
//! [`JobHandle`] a caller holds while the engine thinks.
//!
//! The paper's central experiment is quality under a wall-clock budget
//! (§6: heuristics vs. the exact solver cut off at a time limit). A
//! serving system needs the *live* version of that story: observe the
//! best-so-far consensus while a request runs, harvest it at any moment,
//! and cancel a runaway job without losing the work already done. This
//! module is that surface (DESIGN.md §9):
//!
//! * [`IncumbentSink`] — where algorithms publish monotonically improving
//!   consensus candidates via
//!   [`AlgoContext::offer_incumbent`](crate::algorithms::AlgoContext::offer_incumbent).
//!   The sink keeps the best ranking, the full time-to-score [`TracePoint`]
//!   curve, and streams an [`Event`] per improvement.
//! * [`CancelToken`] — a clonable flag observed by every algorithm's
//!   [`AlgoContext::checkpoint`](crate::algorithms::AlgoContext::checkpoint).
//! * [`JobHandle`] — returned by [`Engine::submit`](super::Engine::submit):
//!   subscribe to [`JobHandle::events`], peek [`JobHandle::best_so_far`],
//!   [`JobHandle::cancel`], and [`JobHandle::wait`] for the final
//!   [`ConsensusReport`].
//!
//! # Event ordering guarantees
//!
//! Per job: exactly one [`Event::Started`] first and one
//! [`Event::Finished`] last; between them, [`Event::Incumbent`] scores are
//! **strictly decreasing** (improvements are recorded and emitted under
//! one lock, so no stale incumbent can be published out of order). For
//! every stopped (cancelled / timed-out) job, and for every completed job
//! except one documented case, the final report's score equals the last
//! `Incumbent` event's score. The exception: a *completed* Ailon run may
//! report its LP-rounding result even when that is worse than the
//! best-input incumbent it streamed early — completed runs always keep
//! the kernel's own result, the bit-identical contract with the
//! pre-anytime engine (DESIGN.md §9.3).

use super::{ConsensusReport, Outcome};
use crate::engine::AlgoSpec;
use crate::ranking::Ranking;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One point of a job's quality-vs-time curve: the job had found a
/// consensus of `score` after `elapsed` of wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePoint {
    /// Wall-clock time since the job was submitted — the serving view,
    /// which includes context setup and the cost-matrix build, so
    /// "time to first incumbent" means what a waiting caller experiences.
    pub elapsed: Duration,
    /// Generalized Kemeny score of the incumbent at that moment.
    pub score: u64,
}

/// What a running job tells its subscribers.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The job began executing (after any queueing).
    Started {
        /// The spec about to run.
        spec: AlgoSpec,
        /// The seed its RNG streams derive from.
        seed: u64,
    },
    /// A strictly better consensus was found.
    Incumbent {
        /// Generalized Kemeny score of the new incumbent.
        score: u64,
        /// Fractional improvement over the previous incumbent
        /// (`(prev − score) / prev`); `None` for the first incumbent or
        /// when the previous score was 0.
        gap: Option<f64>,
        /// Wall-clock time since the job was submitted (see
        /// [`TracePoint::elapsed`]).
        elapsed: Duration,
    },
    /// The job ended; [`JobHandle::wait`] returns the full report.
    Finished(Outcome),
}

/// Cooperative cancellation flag, shared between a [`JobHandle`] and every
/// worker context of its run. Cancelling is a request, not preemption: the
/// run stops at its next
/// [`checkpoint`](crate::algorithms::AlgoContext::checkpoint) and returns
/// its best incumbent.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Best incumbent + trace + event sender, guarded by one lock so
/// improvements are recorded and emitted atomically (the strict-decrease
/// guarantee of the module docs).
#[derive(Debug, Default)]
struct SinkState {
    best: Option<(u64, Ranking)>,
    trace: Vec<TracePoint>,
    sender: Option<Sender<Event>>,
}

/// Where a run publishes monotonically improving incumbents.
///
/// Shared by an [`AlgoContext`](crate::algorithms::AlgoContext) and all
/// its workers; the engine attaches one per request, so every
/// [`ConsensusReport`] carries the run's time-to-score
/// [`ConsensusReport::trace`](super::ConsensusReport::trace) even for the
/// blocking `run`/`run_batch` paths. Offers that do not strictly improve
/// on the best so far are ignored, so the recorded curve is always
/// strictly decreasing regardless of how many parallel workers offer.
#[derive(Debug)]
pub struct IncumbentSink {
    started: Instant,
    state: Mutex<SinkState>,
}

impl Default for IncumbentSink {
    fn default() -> Self {
        IncumbentSink::new()
    }
}

impl IncumbentSink {
    /// A sink with no subscriber; the clock starts now.
    pub fn new() -> Self {
        IncumbentSink {
            started: Instant::now(),
            state: Mutex::new(SinkState::default()),
        }
    }

    /// A sink streaming events to `sender` (what [`Engine::submit`]
    /// wires to the [`JobHandle`]'s receiver).
    ///
    /// [`Engine::submit`]: super::Engine::submit
    pub(crate) fn with_sender(sender: Sender<Event>) -> Self {
        IncumbentSink {
            started: Instant::now(),
            state: Mutex::new(SinkState {
                sender: Some(sender),
                ..SinkState::default()
            }),
        }
    }

    /// Offer a candidate consensus. Records it (and emits
    /// [`Event::Incumbent`]) only when `score` strictly improves on the
    /// best so far; returns whether it did. The ranking is cloned only on
    /// improvement.
    pub fn offer(&self, ranking: &Ranking, score: u64) -> bool {
        let mut state = self.state.lock().expect("incumbent sink poisoned");
        let prev = state.best.as_ref().map(|(s, _)| *s);
        if prev.is_some_and(|p| p <= score) {
            return false;
        }
        let elapsed = self.started.elapsed();
        state.best = Some((score, ranking.clone()));
        state.trace.push(TracePoint { elapsed, score });
        let gap = prev
            .filter(|&p| p > 0)
            .map(|p| (p - score) as f64 / p as f64);
        if let Some(sender) = &state.sender {
            // A dropped receiver just means nobody is watching.
            let _ = sender.send(Event::Incumbent {
                score,
                gap,
                elapsed,
            });
        }
        true
    }

    /// The best `(score, ranking)` offered so far.
    pub fn best_so_far(&self) -> Option<(u64, Ranking)> {
        self.state
            .lock()
            .expect("incumbent sink poisoned")
            .best
            .clone()
    }

    /// The time-to-score curve so far (strictly decreasing scores).
    pub fn trace(&self) -> Vec<TracePoint> {
        self.state
            .lock()
            .expect("incumbent sink poisoned")
            .trace
            .clone()
    }

    /// Whether anyone is live-streaming this sink's events (a
    /// [`JobHandle`] holds the receiving end). Blocking `run`/`run_batch`
    /// attach a *senderless* sink — the trace is still recorded, but
    /// algorithms use this to skip extra work whose only value is an
    /// early streamed incumbent (e.g. the exact solver's pre-decomposition
    /// heuristic, Ailon's best-input scan).
    pub fn has_subscriber(&self) -> bool {
        self.state
            .lock()
            .expect("incumbent sink poisoned")
            .sender
            .is_some()
    }

    /// Stream a lifecycle event ([`Event::Started`] / [`Event::Finished`])
    /// to the subscriber, if any.
    pub(crate) fn emit(&self, event: Event) {
        let state = self.state.lock().expect("incumbent sink poisoned");
        if let Some(sender) = &state.sender {
            let _ = sender.send(event);
        }
    }

    /// Drop the event sender so a draining receiver sees the stream end
    /// (called once, after [`Event::Finished`]).
    pub(crate) fn close(&self) {
        self.state.lock().expect("incumbent sink poisoned").sender = None;
    }
}

/// A handle on one submitted aggregation job
/// ([`Engine::submit`](super::Engine::submit)).
///
/// The job runs on its own thread; the handle observes and steers it:
///
/// * [`JobHandle::events`] — blocking iterator over the job's [`Event`]
///   stream (ends after [`Event::Finished`]);
/// * [`JobHandle::try_events`] / [`JobHandle::next_event`] — non-blocking
///   and bounded-wait variants for poll loops;
/// * [`JobHandle::best_so_far`] — the current incumbent, harvestable at
///   any moment without disturbing the run;
/// * [`JobHandle::cancel`] — cooperative cancellation; the job returns its
///   best incumbent with [`Outcome::Cancelled`];
/// * [`JobHandle::wait`] — join the job and take its [`ConsensusReport`].
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) sink: Arc<IncumbentSink>,
    pub(crate) cancel: CancelToken,
    pub(crate) events: Receiver<Event>,
    pub(crate) thread: JoinHandle<ConsensusReport>,
}

impl JobHandle {
    /// Blocking iterator over the job's events, in emission order. Ends
    /// once the job has finished and all events are drained.
    pub fn events(&self) -> impl Iterator<Item = Event> + '_ {
        self.events.iter()
    }

    /// Drain the events available right now, without blocking.
    pub fn try_events(&self) -> impl Iterator<Item = Event> + '_ {
        self.events.try_iter()
    }

    /// The next event, waiting at most `timeout`. `None` on timeout or
    /// once the stream has ended.
    pub fn next_event(&self, timeout: Duration) -> Option<Event> {
        self.events.recv_timeout(timeout).ok()
    }

    /// The best `(score, ranking)` the job has found so far, if any.
    pub fn best_so_far(&self) -> Option<(u64, Ranking)> {
        self.sink.best_so_far()
    }

    /// Request cooperative cancellation: the run stops at its next
    /// checkpoint and [`JobHandle::wait`] returns a report whose outcome
    /// is [`Outcome::Cancelled`] and whose ranking is the last published
    /// incumbent. Idempotent; cancelling a finished job has no effect.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Whether the job's thread has finished executing (its report may
    /// still be waiting to be collected with [`JobHandle::wait`]).
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Join the job and return its report. Propagates a panic from the
    /// job thread, if any.
    pub fn wait(self) -> ConsensusReport {
        match self.thread.join() {
            Ok(report) => report,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}
