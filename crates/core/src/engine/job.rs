//! Anytime jobs: streaming incumbents, cooperative cancellation, and the
//! [`JobHandle`] a caller holds while the engine thinks.
//!
//! The paper's central experiment is quality under a wall-clock budget
//! (§6: heuristics vs. the exact solver cut off at a time limit). A
//! serving system needs the *live* version of that story: observe the
//! best-so-far consensus while a request runs, harvest it at any moment,
//! and cancel a runaway job without losing the work already done. This
//! module is that surface (DESIGN.md §9):
//!
//! * [`IncumbentSink`] — where algorithms publish monotonically improving
//!   consensus candidates via
//!   [`AlgoContext::offer_incumbent`](crate::algorithms::AlgoContext::offer_incumbent)
//!   and certified lower bounds via
//!   [`AlgoContext::offer_lower_bound`](crate::algorithms::AlgoContext::offer_lower_bound).
//!   The sink keeps the best ranking, the best proven lower bound, the
//!   full time-to-score [`TracePoint`] curve, and streams an [`Event`]
//!   per improvement of either side.
//! * [`CancelToken`] — a clonable flag observed by every algorithm's
//!   [`AlgoContext::checkpoint`](crate::algorithms::AlgoContext::checkpoint).
//! * [`JobHandle`] — returned by [`Engine::submit`](super::Engine::submit):
//!   subscribe to [`JobHandle::events`], peek [`JobHandle::best_so_far`],
//!   [`JobHandle::cancel`], and [`JobHandle::wait`] for the final
//!   [`ConsensusReport`].
//!
//! # Event ordering guarantees
//!
//! Per job: exactly one [`Event::Started`] first and one
//! [`Event::Finished`] last; between them, [`Event::Incumbent`] scores are
//! **strictly decreasing** and [`Event::LowerBound`] bounds are **strictly
//! increasing** (improvements are recorded and emitted under one lock, so
//! no stale incumbent or bound can be published out of order). The two
//! monotone sequences squeeze the optimum from both sides: every emitted
//! lower bound is ≤ every incumbent score, and
//! [`Event::Incumbent::gap`] = `score − lower_bound` is a **certified
//! optimality gap** — the incumbent is provably within `gap` of the
//! optimal Kemeny score (DESIGN.md §11.2). A gap of `Some(0)` proves
//! optimality. `None` means no solver has published a bound yet
//! (heuristics never do), in which case nothing is certified. For every
//! stopped (cancelled / timed-out) job, and for every completed job
//! except one documented case, the final report's score equals the last
//! `Incumbent` event's score. The exception: a *completed* Ailon run may
//! report its LP-rounding result even when that is worse than the
//! best-input incumbent it streamed early — completed runs always keep
//! the kernel's own result, the bit-identical contract with the
//! pre-anytime engine (DESIGN.md §9.3).

use super::{ConsensusReport, Outcome};
use crate::engine::AlgoSpec;
use crate::ranking::Ranking;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One point of a job's quality-vs-time curve: the job had found a
/// consensus of `score` after `elapsed` of wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracePoint {
    /// Wall-clock time since the job was submitted — the serving view,
    /// which includes context setup and the cost-matrix build, so
    /// "time to first incumbent" means what a waiting caller experiences.
    pub elapsed: Duration,
    /// Generalized Kemeny score of the incumbent at that moment.
    pub score: u64,
    /// Best certified lower bound on the optimal score known at that
    /// moment (`None` until a bounding solver publishes one). Invariant:
    /// non-decreasing along a trace and never above the point's `score`,
    /// so `score − lower_bound` is a true optimality gap (DESIGN.md §11.2).
    pub lower_bound: Option<u64>,
}

/// What a running job tells its subscribers.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The job began executing (after any queueing).
    Started {
        /// The spec about to run.
        spec: AlgoSpec,
        /// The seed its RNG streams derive from.
        seed: u64,
    },
    /// A strictly better consensus was found.
    Incumbent {
        /// Generalized Kemeny score of the new incumbent.
        score: u64,
        /// Certified optimality gap: `score − lower_bound` against the
        /// best lower bound proved so far, `None` while no bound exists.
        /// `Some(0)` certifies this incumbent optimal. (Before the
        /// lower-bound channel this field reported improvement over the
        /// previous incumbent; DESIGN.md §11.2 documents the change.)
        gap: Option<u64>,
        /// Wall-clock time since the job was submitted (see
        /// [`TracePoint::elapsed`]).
        elapsed: Duration,
    },
    /// A strictly better certified lower bound on the optimum was proved
    /// (exact branch-and-bound frontier minima, Ailon's LP relaxation).
    LowerBound {
        /// The new bound: every consensus of this dataset scores ≥ this.
        lower_bound: u64,
        /// `best incumbent score − lower_bound`, `None` while no
        /// incumbent exists yet.
        gap: Option<u64>,
        /// Wall-clock time since the job was submitted.
        elapsed: Duration,
    },
    /// The job ended; [`JobHandle::wait`] returns the full report.
    Finished(Outcome),
}

/// Cooperative cancellation flag, shared between a [`JobHandle`] and every
/// worker context of its run. Cancelling is a request, not preemption: the
/// run stops at its next
/// [`checkpoint`](crate::algorithms::AlgoContext::checkpoint) and returns
/// its best incumbent.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Best incumbent + best lower bound + trace + event sender, guarded by
/// one lock so improvements are recorded and emitted atomically (the
/// strict-decrease / strict-increase guarantees of the module docs).
#[derive(Debug, Default)]
struct SinkState {
    best: Option<(u64, Ranking)>,
    /// Best certified lower bound on the optimal score offered so far.
    lower_bound: Option<u64>,
    trace: Vec<TracePoint>,
    sender: Option<Sender<Event>>,
}

/// Where a run publishes monotonically improving incumbents and
/// monotonically tightening lower bounds.
///
/// Shared by an [`AlgoContext`](crate::algorithms::AlgoContext) and all
/// its workers; the engine attaches one per request, so every
/// [`ConsensusReport`] carries the run's time-to-score
/// [`ConsensusReport::trace`](super::ConsensusReport::trace) even for the
/// blocking `run`/`run_batch` paths. Offers that do not strictly improve
/// on the best so far are ignored, so the recorded curve is always
/// strictly decreasing (and the bound curve strictly increasing)
/// regardless of how many parallel workers offer.
#[derive(Debug)]
pub struct IncumbentSink {
    started: Instant,
    state: Mutex<SinkState>,
}

impl Default for IncumbentSink {
    fn default() -> Self {
        IncumbentSink::new()
    }
}

impl IncumbentSink {
    /// A sink with no subscriber; the clock starts now.
    pub fn new() -> Self {
        IncumbentSink {
            started: Instant::now(),
            state: Mutex::new(SinkState::default()),
        }
    }

    /// A sink streaming events to `sender` (what [`Engine::submit`]
    /// wires to the [`JobHandle`]'s receiver).
    ///
    /// [`Engine::submit`]: super::Engine::submit
    pub(crate) fn with_sender(sender: Sender<Event>) -> Self {
        IncumbentSink {
            started: Instant::now(),
            state: Mutex::new(SinkState {
                sender: Some(sender),
                ..SinkState::default()
            }),
        }
    }

    /// Offer a candidate consensus. Records it (and emits
    /// [`Event::Incumbent`]) only when `score` strictly improves on the
    /// best so far; returns whether it did. The ranking is cloned only on
    /// improvement.
    pub fn offer(&self, ranking: &Ranking, score: u64) -> bool {
        let mut state = self.state.lock().expect("incumbent sink poisoned");
        let prev = state.best.as_ref().map(|(s, _)| *s);
        if prev.is_some_and(|p| p <= score) {
            return false;
        }
        let elapsed = self.started.elapsed();
        // A bound can only have been recorded ahead of the incumbent it
        // now caps (the clamp in `offer_lower_bound` needs an incumbent
        // to clamp against); re-clamp here so the per-point invariant
        // `lower_bound ≤ score` holds even then.
        let lower_bound = state.lower_bound.map(|lb| lb.min(score));
        state.lower_bound = lower_bound;
        state.best = Some((score, ranking.clone()));
        state.trace.push(TracePoint {
            elapsed,
            score,
            lower_bound,
        });
        let gap = lower_bound.map(|lb| score - lb);
        if let Some(sender) = &state.sender {
            // A dropped receiver just means nobody is watching.
            let _ = sender.send(Event::Incumbent {
                score,
                gap,
                elapsed,
            });
        }
        true
    }

    /// Offer a certified lower bound on the optimal Kemeny score. Records
    /// it (and emits [`Event::LowerBound`]) only when it strictly
    /// improves on the best bound so far; returns whether it did.
    ///
    /// Two invariants are enforced here, under the same lock as
    /// [`IncumbentSink::offer`], so subscribers can rely on them without
    /// trusting individual solvers:
    ///
    /// * the recorded bound is **non-decreasing** (a looser bound than
    ///   one already proved adds no information and is dropped);
    /// * the recorded bound never exceeds the best incumbent score — a
    ///   valid bound cannot (the incumbent is a real consensus), so an
    ///   offer above it is clamped to the incumbent, which both keeps
    ///   `gap = score − lower_bound` from underflowing and caps the
    ///   damage of a numerically overshooting LP bound at "certifies the
    ///   incumbent" instead of "certifies nonsense".
    pub fn offer_lower_bound(&self, lb: u64) -> bool {
        let mut state = self.state.lock().expect("incumbent sink poisoned");
        let best = state.best.as_ref().map(|(s, _)| *s);
        let lb = match best {
            Some(score) => lb.min(score),
            None => lb,
        };
        if state.lower_bound.is_some_and(|prev| prev >= lb) {
            return false;
        }
        let elapsed = self.started.elapsed();
        state.lower_bound = Some(lb);
        let gap = best.map(|score| score - lb);
        if let Some(sender) = &state.sender {
            let _ = sender.send(Event::LowerBound {
                lower_bound: lb,
                gap,
                elapsed,
            });
        }
        true
    }

    /// The best `(score, ranking)` offered so far.
    pub fn best_so_far(&self) -> Option<(u64, Ranking)> {
        self.state
            .lock()
            .expect("incumbent sink poisoned")
            .best
            .clone()
    }

    /// The best certified lower bound offered so far (`None` until a
    /// bounding solver publishes one). Always ≤ the best incumbent score.
    pub fn lower_bound(&self) -> Option<u64> {
        self.state
            .lock()
            .expect("incumbent sink poisoned")
            .lower_bound
    }

    /// The time-to-score curve so far (strictly decreasing scores).
    pub fn trace(&self) -> Vec<TracePoint> {
        self.state
            .lock()
            .expect("incumbent sink poisoned")
            .trace
            .clone()
    }

    /// Whether anyone is live-streaming this sink's events (a
    /// [`JobHandle`] holds the receiving end). Blocking `run`/`run_batch`
    /// attach a *senderless* sink — the trace is still recorded, but
    /// algorithms use this to skip extra work whose only value is an
    /// early streamed incumbent (e.g. the exact solver's pre-decomposition
    /// heuristic, Ailon's best-input scan).
    pub fn has_subscriber(&self) -> bool {
        self.state
            .lock()
            .expect("incumbent sink poisoned")
            .sender
            .is_some()
    }

    /// Stream a lifecycle event ([`Event::Started`] / [`Event::Finished`])
    /// to the subscriber, if any.
    pub(crate) fn emit(&self, event: Event) {
        let state = self.state.lock().expect("incumbent sink poisoned");
        if let Some(sender) = &state.sender {
            let _ = sender.send(event);
        }
    }

    /// Drop the event sender so a draining receiver sees the stream end
    /// (called once, after [`Event::Finished`]).
    pub(crate) fn close(&self) {
        self.state.lock().expect("incumbent sink poisoned").sender = None;
    }
}

/// A handle on one submitted aggregation job
/// ([`Engine::submit`](super::Engine::submit)).
///
/// The job runs on the engine's scheduler pool (queued behind the
/// admission queue until a worker is free — see
/// [`scheduler`](super::scheduler)); the handle observes and steers it:
///
/// * [`JobHandle::events`] — blocking iterator over the job's [`Event`]
///   stream (ends after [`Event::Finished`]);
/// * [`JobHandle::try_events`] / [`JobHandle::next_event`] — non-blocking
///   and bounded-wait variants for poll loops;
/// * [`JobHandle::best_so_far`] — the current incumbent, harvestable at
///   any moment without disturbing the run;
/// * [`JobHandle::cancel`] — cooperative cancellation; the job returns its
///   best incumbent with [`Outcome::Cancelled`] (cancelling while still
///   queued makes it stop at its first checkpoint once a worker picks it
///   up — an accepted job always produces a report);
/// * [`JobHandle::wait`] — block for the final [`ConsensusReport`].
#[derive(Debug)]
pub struct JobHandle {
    sink: Arc<IncumbentSink>,
    cancel: CancelToken,
    events: Receiver<Event>,
    /// One-shot channel the scheduler worker sends the finished report
    /// (or the panic payload of a crashed kernel) through.
    report: Receiver<std::thread::Result<ConsensusReport>>,
    /// Set by the worker *after* sending the report, so observing `true`
    /// guarantees the report is collectable without blocking.
    done: Arc<AtomicBool>,
    /// The report once received, so [`JobHandle::try_report`] can hand out
    /// clones while [`JobHandle::wait`] still consumes the handle.
    collected: Mutex<Option<std::thread::Result<ConsensusReport>>>,
}

impl JobHandle {
    pub(crate) fn new(
        sink: Arc<IncumbentSink>,
        cancel: CancelToken,
        events: Receiver<Event>,
        report: Receiver<std::thread::Result<ConsensusReport>>,
        done: Arc<AtomicBool>,
    ) -> Self {
        JobHandle {
            sink,
            cancel,
            events,
            report,
            done,
            collected: Mutex::new(None),
        }
    }

    /// Blocking iterator over the job's events, in emission order. Ends
    /// once the job has finished and all events are drained.
    pub fn events(&self) -> impl Iterator<Item = Event> + '_ {
        self.events.iter()
    }

    /// Drain the events available right now, without blocking.
    pub fn try_events(&self) -> impl Iterator<Item = Event> + '_ {
        self.events.try_iter()
    }

    /// The next event, waiting at most `timeout`. `None` on timeout or
    /// once the stream has ended.
    pub fn next_event(&self, timeout: Duration) -> Option<Event> {
        self.events.recv_timeout(timeout).ok()
    }

    /// The best `(score, ranking)` the job has found so far, if any.
    pub fn best_so_far(&self) -> Option<(u64, Ranking)> {
        self.sink.best_so_far()
    }

    /// The job's incumbent sink — shared observability for callers (like
    /// the network service) that hand the events receiver to one consumer
    /// but still want [`IncumbentSink::best_so_far`] and
    /// [`IncumbentSink::trace`] from elsewhere.
    pub fn sink(&self) -> &Arc<IncumbentSink> {
        &self.sink
    }

    /// A clone of the job's cancel token, so cancellation stays possible
    /// after the handle itself moves into a consumer (e.g. the service's
    /// per-job event collector).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Request cooperative cancellation: the run stops at its next
    /// checkpoint and [`JobHandle::wait`] returns a report whose outcome
    /// is [`Outcome::Cancelled`] and whose ranking is the last published
    /// incumbent. Idempotent; cancelling a finished job has no effect.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Whether the job has finished executing (its report may still be
    /// waiting to be collected with [`JobHandle::wait`]).
    pub fn is_finished(&self) -> bool {
        self.done.load(Ordering::Acquire)
            || self
                .collected
                .lock()
                .expect("job handle poisoned")
                .is_some()
    }

    /// The final report if the job has finished, without consuming the
    /// handle (clones; `None` while queued or running). Propagates a
    /// panic from the job's kernel, if any.
    pub fn try_report(&self) -> Option<ConsensusReport> {
        let mut collected = self.collected.lock().expect("job handle poisoned");
        if collected.is_none() {
            if let Ok(result) = self.report.try_recv() {
                *collected = Some(result);
            }
        }
        match collected.as_ref() {
            None => None,
            Some(Ok(report)) => Some(report.clone()),
            Some(Err(_)) => {
                let panic = collected.take().expect("checked above").unwrap_err();
                std::panic::resume_unwind(panic)
            }
        }
    }

    /// Block for the job's report and return it. Propagates a panic from
    /// the job's kernel, if any.
    pub fn wait(self) -> ConsensusReport {
        let collected = self.collected.into_inner().expect("job handle poisoned");
        let result = match collected {
            Some(result) => result,
            None => self
                .report
                .recv()
                .expect("scheduler worker always sends a report"),
        };
        match result {
            Ok(report) => report,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}
