//! Text format for rankings and datasets.
//!
//! The grammar mirrors the paper's notation:
//!
//! ```text
//! ranking  :=  '[' bucket (',' bucket)* ']'
//! bucket   :=  '{' label (',' label)* '}'
//! ```
//!
//! Labels are either raw numeric ids ([`parse_ranking`]) or arbitrary
//! whitespace-trimmed strings interned into a [`Universe`]
//! ([`parse_ranking_labeled`]). A dataset file is one ranking per non-empty,
//! non-`#`-comment line.

use crate::{Element, Ranking, RankingError, Universe};
use std::fmt;

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input did not follow the `[{..},{..}]` grammar.
    Syntax {
        /// Byte offset of the offending character.
        offset: usize,
        /// What the parser expected there.
        message: String,
    },
    /// A numeric label did not fit in `u32`.
    BadNumber {
        /// The offending token, verbatim.
        token: String,
    },
    /// Structurally invalid ranking (empty/duplicate buckets).
    Invalid(RankingError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { offset, message } => {
                write!(f, "syntax error at byte {offset}: {message}")
            }
            ParseError::BadNumber { token } => write!(f, "invalid element id: {token:?}"),
            ParseError::Invalid(e) => write!(f, "invalid ranking: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<RankingError> for ParseError {
    fn from(e: RankingError) -> Self {
        ParseError::Invalid(e)
    }
}

/// Split `[{a,b},{c}]` into label buckets without interpreting labels.
fn tokenize(input: &str) -> Result<Vec<Vec<&str>>, ParseError> {
    let s = input.trim();
    let err = |offset: usize, message: &str| ParseError::Syntax {
        offset,
        message: message.to_owned(),
    };
    let inner = s
        .strip_prefix('[')
        .ok_or_else(|| err(0, "expected '['"))?
        .strip_suffix(']')
        .ok_or_else(|| err(s.len(), "expected ']'"))?
        .trim();
    let mut buckets = Vec::new();
    if inner.is_empty() {
        return Ok(buckets);
    }
    let mut rest = inner;
    loop {
        let offset = input.len() - rest.len();
        rest = rest
            .trim_start()
            .strip_prefix('{')
            .ok_or_else(|| err(offset, "expected '{'"))?;
        let close = rest
            .find('}')
            .ok_or_else(|| err(input.len() - rest.len(), "expected '}'"))?;
        let body = &rest[..close];
        let labels: Vec<&str> = body.split(',').map(str::trim).collect();
        if labels.iter().any(|l| l.is_empty()) {
            return Err(err(input.len() - rest.len(), "empty label"));
        }
        buckets.push(labels);
        rest = rest[close + 1..].trim_start();
        if rest.is_empty() {
            return Ok(buckets);
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| err(input.len() - rest.len(), "expected ',' between buckets"))?;
    }
}

/// Parse a ranking with numeric element ids, e.g. `[{0},{1,2}]`.
pub fn parse_ranking(input: &str) -> Result<Ranking, ParseError> {
    let buckets = tokenize(input)?;
    let mut out: Vec<Vec<Element>> = Vec::with_capacity(buckets.len());
    for b in buckets {
        let mut bucket = Vec::with_capacity(b.len());
        for label in b {
            let id: u32 = label.parse().map_err(|_| ParseError::BadNumber {
                token: label.to_owned(),
            })?;
            bucket.push(Element(id));
        }
        out.push(bucket);
    }
    Ok(Ranking::from_buckets(out)?)
}

/// Parse a ranking with arbitrary string labels, interning them into
/// `universe`, e.g. `[{A},{B,C}]`.
pub fn parse_ranking_labeled(input: &str, universe: &mut Universe) -> Result<Ranking, ParseError> {
    let buckets = tokenize(input)?;
    let out: Vec<Vec<Element>> = buckets
        .into_iter()
        .map(|b| b.into_iter().map(|l| universe.intern(l)).collect())
        .collect();
    Ok(Ranking::from_buckets(out)?)
}

/// Parse a multi-line dataset file: one labeled ranking per line; blank
/// lines and lines starting with `#` are skipped. Returns the raw rankings
/// (possibly over different elements — normalize before aggregating).
pub fn parse_dataset_lines(
    input: &str,
    universe: &mut Universe,
) -> Result<Vec<Ranking>, ParseError> {
    let mut out = Vec::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_ranking_labeled(line, universe)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_numeric() {
        for text in ["[{0}]", "[{0},{1,2}]", "[{3},{0,2},{1}]"] {
            let r = parse_ranking(text).unwrap();
            assert_eq!(r.to_string(), text);
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let r = parse_ranking("  [ {0} , { 2 , 1 } ]  ").unwrap();
        assert_eq!(r.to_string(), "[{0},{1,2}]");
    }

    #[test]
    fn labeled_parse_interns() {
        let mut u = Universe::new();
        let r = parse_ranking_labeled("[{A},{B,C}]", &mut u).unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(r.display_with(&u), "[{A},{B,C}]");
    }

    #[test]
    fn paper_table3_raw_dataset_parses() {
        // Table 3's raw dataset d_r.
        let mut u = Universe::new();
        let rankings = parse_dataset_lines(
            "# raw dataset dr\n\
             [{A},{D},{B}]\n\
             \n\
             [{B},{E,A}]\n\
             [{D},{A,B},{C}]\n",
            &mut u,
        )
        .unwrap();
        assert_eq!(rankings.len(), 3);
        assert_eq!(u.len(), 5);
        assert_eq!(rankings[1].n_elements(), 3);
    }

    #[test]
    fn syntax_errors_reported() {
        assert!(matches!(
            parse_ranking("{0}"),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            parse_ranking("[{0}"),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            parse_ranking("[{}]"),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            parse_ranking("[{0}{1}]"),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            parse_ranking("[{x}]"),
            Err(ParseError::BadNumber { .. })
        ));
        assert!(matches!(
            parse_ranking("[{0},{0}]"),
            Err(ParseError::Invalid(_))
        ));
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut u = Universe::new();
        assert!(matches!(
            parse_ranking_labeled("[{A},{A}]", &mut u),
            Err(ParseError::Invalid(_))
        ));
    }
}
