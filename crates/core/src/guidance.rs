//! Algorithm guidance from §7.4, as code.
//!
//! The paper closes its analysis with concrete recommendations: which
//! algorithm to use, given the dataset features that were shown to matter
//! (size, similarity, ties introduced by normalization) and the user's
//! quality/time trade-off. This module encodes those rules so downstream
//! users can ask for a recommendation programmatically.

use crate::dataset::Dataset;
use crate::similarity::dataset_similarity;

/// Features of a dataset that drive the recommendation (§7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetFeatures {
    /// Number of elements.
    pub n: usize,
    /// Number of input rankings.
    pub m: usize,
    /// Intrinsic similarity `s(R)` (§6.2.2); `None` if unknown.
    pub similarity: Option<f64>,
    /// Whether the inputs contain large ties — e.g. the ending buckets the
    /// unification process creates (§7.3.2).
    pub has_large_ties: bool,
}

impl DatasetFeatures {
    /// Measure the features of a dataset directly.
    pub fn measure(data: &Dataset) -> Self {
        let large = data
            .rankings()
            .iter()
            .any(|r| r.max_bucket_size() * 4 >= r.n_elements().max(1) && r.max_bucket_size() > 2);
        DatasetFeatures {
            n: data.n(),
            m: data.m(),
            similarity: Some(dataset_similarity(data)),
            has_large_ties: large,
        }
    }
}

/// The user's priority in the time/quality trade-off of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Highest quality results are mandatory.
    Quality,
    /// Good quality in reasonable time (the paper's general outcome).
    Balanced,
    /// Time is highly important.
    Speed,
}

/// A recommendation: the algorithm name (as registered in
/// [`crate::algorithms::paper_algorithms`]) plus the §7.4 rationale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recommendation {
    /// Registry name of the recommended algorithm.
    pub algorithm: &'static str,
    /// Which §7.4 rule fired.
    pub rationale: &'static str,
}

/// Default element-count ceiling under which exact resolution is considered
/// tractable. The paper computed optima up to n = 60 with CPLEX and hours
/// of budget; our native branch-and-bound is comfortable around 20 on
/// uniform data (see EXPERIMENTS.md).
pub const EXACT_TRACTABLE_N: usize = 20;

/// Element count past which BioConsert's `O(n²)` memory becomes the
/// bottleneck (§7.4: "extremely large datasets, n > 30 000").
pub const BIOCONSERT_MEMORY_LIMIT_N: usize = 30_000;

/// Apply the §7.4 decision rules.
pub fn recommend(f: &DatasetFeatures, priority: Priority) -> Recommendation {
    match priority {
        Priority::Quality => {
            if f.n <= EXACT_TRACTABLE_N {
                Recommendation {
                    algorithm: "ExactAlgorithm",
                    rationale: "optimal consensus is tractable at this size (§7.4 first case)",
                }
            } else if f.n <= BIOCONSERT_MEMORY_LIMIT_N {
                Recommendation {
                    algorithm: "BioConsert",
                    rationale: "best quality in a very large number of cases; benefits from \
                                similarity and is independent of the normalization (§7.4)",
                }
            } else {
                Recommendation {
                    algorithm: "KwikSortMin",
                    rationale: "BioConsert's O(n²) memory hits physical limits past ~30k \
                                elements; KwikSort is the best alternative (§7.4 second case)",
                }
            }
        }
        Priority::Balanced => {
            if f.n > BIOCONSERT_MEMORY_LIMIT_N {
                Recommendation {
                    algorithm: "KwikSort",
                    rationale: "good quality at any scale, positively influenced by dataset \
                                similarity (§7.4, Figure 4)",
                }
            } else {
                Recommendation {
                    algorithm: "BioConsert",
                    rationale: "the best approach in a very large number of cases (§7.4 \
                                general outcome)",
                }
            }
        }
        Priority::Speed => {
            if f.has_large_ties {
                Recommendation {
                    algorithm: "MEDRank(0.5)",
                    rationale: "with large ties (e.g. unification buckets) MEDRank is an \
                                excellent candidate (§7.4 last case)",
                }
            } else {
                Recommendation {
                    algorithm: "BordaCount",
                    rationale: "with few ties BordaCount is the fast choice (§7.4 last case)",
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;

    fn features(n: usize, large_ties: bool) -> DatasetFeatures {
        DatasetFeatures {
            n,
            m: 7,
            similarity: Some(0.0),
            has_large_ties: large_ties,
        }
    }

    #[test]
    fn quality_small_uses_exact() {
        assert_eq!(
            recommend(&features(10, false), Priority::Quality).algorithm,
            "ExactAlgorithm"
        );
    }

    #[test]
    fn quality_medium_uses_bioconsert() {
        assert_eq!(
            recommend(&features(500, false), Priority::Quality).algorithm,
            "BioConsert"
        );
    }

    #[test]
    fn quality_huge_uses_kwiksort() {
        assert_eq!(
            recommend(&features(50_000, false), Priority::Quality).algorithm,
            "KwikSortMin"
        );
    }

    #[test]
    fn speed_depends_on_ties() {
        assert_eq!(
            recommend(&features(100, true), Priority::Speed).algorithm,
            "MEDRank(0.5)"
        );
        assert_eq!(
            recommend(&features(100, false), Priority::Speed).algorithm,
            "BordaCount"
        );
    }

    #[test]
    fn measure_detects_unification_bucket() {
        // A ranking whose last bucket holds half the elements (typical
        // unified dataset).
        let data = Dataset::new(vec![
            parse_ranking("[{0},{1},{2,3,4,5}]").unwrap(),
            parse_ranking("[{5},{4},{0,1,2,3}]").unwrap(),
        ])
        .unwrap();
        let f = DatasetFeatures::measure(&data);
        assert!(f.has_large_ties);
        assert_eq!(f.n, 6);
        assert_eq!(f.m, 2);
        // A tie-free dataset reports no large ties.
        let perm = Dataset::new(vec![parse_ranking("[{0},{1},{2}]").unwrap()]).unwrap();
        assert!(!DatasetFeatures::measure(&perm).has_large_ties);
    }
}
