//! Matrix-free pairwise-cost access and O(m·n) positional statistics —
//! the large-n lane (DESIGN.md §16).
//!
//! The dense [`CostMatrix`] is 8n² bytes resident and `O(m·n²)` to build;
//! past a few thousand elements that wall dominates every kernel's own
//! cost. The positional algorithms (Borda, Copeland, MedRank) never needed
//! the matrix at all — their consensus is a function of per-element
//! positional accumulators computable in one `O(m·n)` pass (the average-
//! rank view of a Lehmer-code factorization: each element's coordinate is
//! independent of the others, cf. *Efficient Rank Aggregation via Lehmer
//! Codes*). MC4 needs pairwise information but only one row at a time,
//! which [`PositionalCosts`] recomputes on demand in `O(m·n)` per row.
//!
//! [`CostProvider`] is the abstraction both lanes implement:
//!
//! * [`CostMatrix`] returns its resident row — zero copies, `O(1)`;
//! * [`PositionalCosts`] fills a caller-owned scratch buffer — zero
//!   resident quadratic state, `O(m·n)` per row.
//!
//! Both produce **bit-identical** rows (the differential conformance suite
//! in `tests/kernel_lane_conformance.rs` pins this), so a kernel written
//! against the trait cannot diverge between lanes.

use crate::dataset::Dataset;
use crate::element::Element;
use crate::pairs::CostMatrix;

/// Uniform access to the pairwise disagreement costs of a dataset,
/// independent of whether a dense [`CostMatrix`] is resident.
///
/// The unit of access is the interleaved cost row of element `a`:
/// `[cost_before(a,0), cost_tied(a,0), cost_before(a,1), …]`, length `2n`,
/// diagonal cells zero — exactly [`CostMatrix::row`]'s layout, so
/// [`crate::pairs::row_cost_after`] derives the third decision's cost from
/// a provider row too.
pub trait CostProvider {
    /// Number of elements.
    fn n(&self) -> usize;

    /// Number of input rankings.
    fn m(&self) -> u32;

    /// The interleaved cost row of `a`, using `buf` (length ≥ `2n`) as
    /// scratch if the provider has no resident storage. The returned slice
    /// has length exactly `2n` and is only valid until the next call.
    fn row_into<'a>(&'a self, a: Element, buf: &'a mut [u32]) -> &'a [u32];

    /// Resident heap footprint of the provider in bytes (excludes the
    /// dataset itself and caller scratch).
    fn bytes(&self) -> usize;
}

impl CostProvider for CostMatrix {
    fn n(&self) -> usize {
        self.n()
    }

    fn m(&self) -> u32 {
        self.m()
    }

    fn row_into<'a>(&'a self, a: Element, _buf: &'a mut [u32]) -> &'a [u32] {
        self.row(a)
    }

    fn bytes(&self) -> usize {
        self.bytes()
    }
}

/// The matrix-free cost provider: recomputes any cost row from the input
/// rankings in `O(m·n)`, holding no quadratic state.
#[derive(Debug, Clone, Copy)]
pub struct PositionalCosts<'d> {
    data: &'d Dataset,
}

impl<'d> PositionalCosts<'d> {
    /// Wrap a dataset. No precomputation — rows are derived on demand.
    pub fn new(data: &'d Dataset) -> Self {
        PositionalCosts { data }
    }
}

impl CostProvider for PositionalCosts<'_> {
    fn n(&self) -> usize {
        self.data.n()
    }

    fn m(&self) -> u32 {
        self.data.m() as u32
    }

    /// Count row `a`'s pair votes across the rankings, then convert counts
    /// to costs (`cost = m − count`) exactly as the dense build does —
    /// same comparisons on the same position vectors, so the row is
    /// bit-identical to [`CostMatrix::row`].
    fn row_into<'a>(&'a self, a: Element, buf: &'a mut [u32]) -> &'a [u32] {
        let n = self.data.n();
        let m = self.m();
        let row = &mut buf[..2 * n];
        row.fill(0);
        for r in self.data.rankings() {
            let pos = r.positions();
            let pa = pos[a.index()];
            for (b, &pb) in pos.iter().enumerate() {
                if b == a.index() {
                    continue;
                }
                if pa < pb {
                    row[2 * b] += 1; // a strictly before b
                } else if pa == pb {
                    row[2 * b + 1] += 1; // tied
                }
            }
        }
        for b in 0..n {
            if b == a.index() {
                continue;
            }
            row[2 * b] = m - row[2 * b];
            row[2 * b + 1] = m - row[2 * b + 1];
        }
        row
    }

    fn bytes(&self) -> usize {
        0
    }
}

/// Per-element positional accumulators gathered in one `O(m·n)` pass —
/// everything the positional consensus family needs, with no pairwise
/// state at all.
///
/// * `borda[e]` — sum over rankings of (1 + #elements strictly before
///   `e`), the §4.1.3 tie-adapted Borda score (ascending is better);
/// * `copeland[e]` — sum over rankings of #elements strictly after `e`,
///   the paper's positional Copeland score (descending is better).
#[derive(Debug, Clone)]
pub struct PositionalStats {
    borda: Vec<u64>,
    copeland: Vec<u64>,
    m: u32,
}

impl PositionalStats {
    /// Accumulate both score vectors in a single pass over the rankings.
    pub fn compute(data: &Dataset) -> Self {
        let n = data.n();
        let mut borda = vec![0u64; n];
        let mut copeland = vec![0u64; n];
        for r in data.rankings() {
            let mut before = 0u64;
            let mut after = r.n_elements() as u64;
            for bucket in r.buckets() {
                after -= bucket.len() as u64;
                for &e in bucket {
                    borda[e.index()] += before + 1;
                    copeland[e.index()] += after;
                }
                before += bucket.len() as u64;
            }
        }
        PositionalStats {
            borda,
            copeland,
            m: data.m() as u32,
        }
    }

    /// Tie-adapted Borda scores (sum of positions; ascending is better).
    pub fn borda_scores(&self) -> &[u64] {
        &self.borda
    }

    /// Positional Copeland scores (sum of strictly-after counts;
    /// descending is better).
    pub fn copeland_scores(&self) -> &[u64] {
        &self.copeland
    }

    /// Average position of `e` over the inputs — the average-rank
    /// (Lehmer-marginal) statistic; Borda's ranking is exactly the sort by
    /// this value.
    pub fn mean_position(&self, e: Element) -> f64 {
        self.borda[e.index()] as f64 / f64::from(self.m.max(1))
    }

    /// Number of input rankings the statistics were accumulated over.
    pub fn m(&self) -> u32 {
        self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;

    fn paper_dataset() -> Dataset {
        Dataset::new(vec![
            parse_ranking("[{0},{3},{1,2}]").unwrap(),
            parse_ranking("[{0},{1,2},{3}]").unwrap(),
            parse_ranking("[{3},{0,2},{1}]").unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn provider_rows_match_the_dense_matrix() {
        let data = paper_dataset();
        let dense = CostMatrix::build(&data);
        let free = PositionalCosts::new(&data);
        let mut buf = vec![0u32; 2 * data.n()];
        for a in 0..data.n() {
            let e = Element(a as u32);
            assert_eq!(free.row_into(e, &mut buf), dense.row(e), "row {a}");
        }
        assert_eq!(free.n(), dense.n());
        assert_eq!(free.m(), CostProvider::m(&dense));
        assert_eq!(free.bytes(), 0);
        assert!(CostProvider::bytes(&dense) > 0);
    }

    #[test]
    fn stats_match_the_direct_definitions() {
        let data = paper_dataset();
        let stats = PositionalStats::compute(&data);
        // Element 0: positions 1, 1, 2 → borda 4; after-counts 3, 3, 1 → 7.
        assert_eq!(stats.borda_scores()[0], 4);
        assert_eq!(stats.copeland_scores()[0], 7);
        assert!((stats.mean_position(Element(0)) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.m(), 3);
    }
}
