//! Rank aggregation with ties.
//!
//! This crate implements the data model, distances and the full algorithm
//! suite of *“Rank aggregation with ties: Experiments and Analysis”*
//! (Brancotte et al., PVLDB 8(11), 2015):
//!
//! * **Data model** — [`Ranking`] (a bucket order: ordered disjoint buckets
//!   of tied elements), [`Dataset`] (a set of rankings over the same
//!   elements), [`Universe`] (string-label interner).
//! * **Distances** — the classical Kendall-τ for permutations, the
//!   *generalized* Kendall-τ `G` for rankings with ties (§2.2), Spearman's
//!   footrule, the (generalized) Kemeny score `K`, and the Kendall-τ
//!   correlation/similarity of §6.2.2.
//! * **Algorithms** — every approach of the paper's Table 1 that was
//!   (re-)implemented and evaluated (bold rows), plus the non-bold
//!   approaches as extensions. See [`algorithms`].
//! * **Exact solver** — the paper's linear pseudo-boolean formulation (§4.2)
//!   on top of the `lpsolve` crate, a native branch-and-bound that is much
//!   faster, and a brute-force enumerator for cross-validation.
//! * **Engine** — the serving front door ([`engine`]): typed algorithm
//!   specs ([`engine::AlgoSpec`]), an [`engine::AggregationRequest`] /
//!   [`engine::ConsensusReport`] API with per-request outcomes, and
//!   concurrent batches over a shared cost-matrix cache
//!   ([`engine::Engine::run_batch`]).
//! * **Anytime jobs** — [`engine::Engine::submit`] returns an
//!   [`engine::JobHandle`] streaming typed [`engine::Event`]s (started /
//!   strictly improving incumbents / finished), with a harvestable
//!   best-so-far, cooperative cancellation, and a time-to-score
//!   [`engine::ConsensusReport::trace`] in every report.
//! * **Guidance** — the §7.4 decision rules, as code.
//!
//! # Quick example
//!
//! ```
//! use rank_core::engine::{AggregationRequest, AlgoSpec, Engine, Outcome};
//! use rank_core::{Dataset, Ranking};
//!
//! // r1 = [{A}, {D}, {B, C}], r2 = [{A}, {B, C}, {D}], r3 = [{D}, {A, C}, {B}]
//! // with A=0, B=1, C=2, D=3 (the paper's §2.2 running example).
//! let r1 = Ranking::from_slices(&[&[0], &[3], &[1, 2]]).unwrap();
//! let r2 = Ranking::from_slices(&[&[0], &[1, 2], &[3]]).unwrap();
//! let r3 = Ranking::from_slices(&[&[3], &[0, 2], &[1]]).unwrap();
//! let data = Dataset::new(vec![r1, r2, r3]).unwrap();
//!
//! let engine = Engine::new();
//! let request = AggregationRequest::new(data, AlgoSpec::BioConsert).with_seed(42);
//! let report = engine.run(&request);
//! assert_eq!(report.score, 5);
//! assert_eq!(report.outcome, Outcome::Heuristic);
//! ```
//!
//! The algorithm kernels remain directly accessible through
//! [`algorithms::ConsensusAlgorithm`] for callers that need to bypass the
//! engine (the timing harness does, §6.2.4).

// Keep every public item documented: the docs CI job runs rustdoc with
// `-D warnings`, so an undocumented addition fails the build instead of
// rotting silently.
#![warn(missing_docs)]

pub mod algorithms;
pub mod dataset;
pub mod distance;
pub mod element;
pub mod engine;
pub mod guidance;
pub mod normalize;
pub mod pairs;
pub mod parallel;
pub mod parse;
pub mod positional;
pub mod ranking;
pub mod score;
pub mod session;
pub mod similarity;
pub mod telemetry;

pub use dataset::{Dataset, DatasetError};
pub use element::{Element, Universe};
pub use pairs::{CostMatrix, PairTable};
pub use ranking::{Ranking, RankingError};
