//! Elements and the string-label interner.
//!
//! Algorithms operate on dense integer ids (`Element(0..n)`); human-readable
//! labels live at the edges, in a [`Universe`]. This keeps every hot loop
//! free of hashing and string handling.

use std::collections::HashMap;
use std::fmt;

/// A ranked element, identified by a dense integer id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Element(pub u32);

impl Element {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Element {
    #[inline]
    fn from(v: u32) -> Self {
        Element(v)
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Bidirectional mapping between element labels and dense ids.
///
/// ```
/// use rank_core::Universe;
/// let mut u = Universe::new();
/// let a = u.intern("Ascari");
/// let b = u.intern("Brabham");
/// assert_eq!(u.intern("Ascari"), a); // idempotent
/// assert_eq!(u.name(b), "Brabham");
/// assert_eq!(u.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Universe {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Universe {
    /// An empty universe.
    pub fn new() -> Self {
        Universe::default()
    }

    /// Intern `name`, returning its element id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Element {
        if let Some(&id) = self.index.get(name) {
            return Element(id);
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        Element(id)
    }

    /// Look up an already-interned label.
    pub fn get(&self, name: &str) -> Option<Element> {
        self.index.get(name).map(|&id| Element(id))
    }

    /// The label of `e`.
    ///
    /// # Panics
    /// Panics if `e` was not interned in this universe.
    pub fn name(&self, e: Element) -> &str {
        &self.names[e.index()]
    }

    /// Number of interned elements.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` iff no element has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(element, label)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Element, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Element(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut u = Universe::new();
        let ids: Vec<Element> = ["x", "y", "z", "y", "x"]
            .iter()
            .map(|s| u.intern(s))
            .collect();
        assert_eq!(
            ids,
            vec![Element(0), Element(1), Element(2), Element(1), Element(0)]
        );
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut u = Universe::new();
        let e = u.intern("gene-TP53");
        assert_eq!(u.get("gene-TP53"), Some(e));
        assert_eq!(u.get("gene-BRCA1"), None);
        assert_eq!(u.name(e), "gene-TP53");
    }

    #[test]
    fn iter_in_id_order() {
        let mut u = Universe::new();
        u.intern("b");
        u.intern("a");
        let pairs: Vec<_> = u.iter().collect();
        assert_eq!(pairs, vec![(Element(0), "b"), (Element(1), "a")]);
    }

    #[test]
    fn element_display_and_index() {
        assert_eq!(Element(17).to_string(), "17");
        assert_eq!(Element(17).index(), 17);
        assert_eq!(Element::from(3u32), Element(3));
    }
}
