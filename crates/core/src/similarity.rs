//! Dataset similarity (§6.2.2).
//!
//! The Kendall-τ rank correlation coefficient, extended to rankings with
//! ties through the generalized distance (eq. 4), and its average over all
//! ranking pairs of a dataset (eq. 5) — the *intrinsic similarity* `s(R)`
//! that Figure 3 plots and §7.2 analyzes.

use crate::dataset::Dataset;
use crate::distance::generalized_kendall_tau;
use crate::ranking::Ranking;

/// Kendall-τ correlation of two rankings with ties (eq. 4):
/// `τ = (½n(n−1) − 2G) / (½n(n−1))`, in `[-1, 1]`.
///
/// # Panics
/// Panics if the rankings are over different supports or fewer than 2
/// elements (the coefficient is undefined).
pub fn tau_correlation(r: &Ranking, s: &Ranking) -> f64 {
    let n = r.n_elements() as f64;
    assert!(n >= 2.0, "tau correlation needs at least 2 elements");
    let total = n * (n - 1.0) / 2.0;
    let g = generalized_kendall_tau(r, s) as f64;
    (total - 2.0 * g) / total
}

/// Intrinsic similarity `s(R)` of a dataset (eq. 5): the average τ over all
/// `C(m,2)` ranking pairs. Datasets with a single ranking get similarity 1.
pub fn dataset_similarity(data: &Dataset) -> f64 {
    let m = data.m();
    if m < 2 {
        return 1.0;
    }
    let mut acc = 0.0;
    for i in 0..m {
        for j in (i + 1)..m {
            acc += tau_correlation(data.ranking(i), data.ranking(j));
        }
    }
    acc / (m * (m - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;

    fn r(text: &str) -> Ranking {
        parse_ranking(text).unwrap()
    }

    #[test]
    fn identical_rankings_have_tau_one() {
        let a = r("[{0},{1,2},{3}]");
        assert_eq!(tau_correlation(&a, &a), 1.0);
    }

    #[test]
    fn reversed_permutations_have_tau_minus_one() {
        let a = r("[{0},{1},{2},{3}]");
        assert_eq!(tau_correlation(&a, &a.reversed()), -1.0);
    }

    #[test]
    fn tau_can_go_below_minus_one_never() {
        // G ≤ C(n,2), so τ ≥ -1 always; spot-check an adversarial pair.
        let a = r("[{0,1,2,3}]");
        let b = r("[{3},{2},{1},{0}]");
        let t = tau_correlation(&a, &b);
        assert!((-1.0..=1.0).contains(&t));
        assert_eq!(t, -1.0); // every pair disagrees (tied vs strict)
    }

    #[test]
    fn dataset_similarity_averages_pairs() {
        let a = r("[{0},{1},{2},{3}]");
        let b = a.clone();
        let c = a.reversed();
        // pairs: (a,b)=1, (a,c)=-1, (b,c)=-1 → average = -1/3.
        let data = Dataset::new(vec![a, b, c]).unwrap();
        assert!((dataset_similarity(&data) - (-1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn single_ranking_similarity_is_one() {
        let data = Dataset::new(vec![r("[{0},{1}]")]).unwrap();
        assert_eq!(dataset_similarity(&data), 1.0);
    }
}
