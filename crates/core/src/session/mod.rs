//! Live dataset sessions: mutable datasets with delta-patched cost
//! matrices and warm-started re-solves (DESIGN.md §13).
//!
//! The engine aggregates *frozen* datasets: every request builds (or
//! cache-hits) an `O(m·n²)` [`CostMatrix`] and every solve starts cold. A
//! production leaderboard mutates continuously — one vote arrives, one is
//! retracted, one is revised — and re-paying `O(m·n²)` plus a cold solve
//! per edit wastes almost all of its work, because a single edited input
//! ranking shifts each pair's cost by at most one.
//!
//! [`DatasetSession`] keeps the dataset and its cost matrix **live**:
//!
//! * [`DatasetSession::add_ranking`] / [`remove_ranking`] /
//!   [`replace_ranking`] patch the matrix in `O(n²)` per edit
//!   ([`CostMatrix::patch_add`] / [`CostMatrix::patch_remove`]) instead of
//!   rebuilding in `O(m·n²)` — bit-identical to a cold rebuild
//!   (property-tested in `tests/session_properties.rs`);
//! * when an edit mentions unseen elements the universe **grows**
//!   ([`CostMatrix::grow`]): existing inputs adopt the new elements as one
//!   appended tied bucket (§5.1 unification) and the new cells follow
//!   analytically, still `O(n²)`;
//! * every successful edit bumps a monotone **version** — the tag the
//!   service's live jobs attach to re-emitted incumbents;
//! * the last consensus is retained as a [`WarmStart`] hint
//!   ([`DatasetSession::record_consensus`]); [`DatasetSession::request`]
//!   attaches it so the next solve seeds from the previous answer instead
//!   of starting cold.
//!
//! [`remove_ranking`]: DatasetSession::remove_ranking
//! [`replace_ranking`]: DatasetSession::replace_ranking
//!
//! # Quick example
//!
//! ```
//! use rank_core::engine::{AlgoSpec, Engine};
//! use rank_core::session::DatasetSession;
//! use rank_core::{Dataset, Ranking};
//!
//! let data = Dataset::new(vec![
//!     Ranking::from_slices(&[&[0], &[3], &[1, 2]]).unwrap(),
//!     Ranking::from_slices(&[&[0], &[1, 2], &[3]]).unwrap(),
//!     Ranking::from_slices(&[&[3], &[0, 2], &[1]]).unwrap(),
//! ])
//! .unwrap();
//! let engine = Engine::new();
//! let mut session = DatasetSession::new(data);
//!
//! // Cold first solve; the session retains the consensus as a warm hint.
//! let first = session.resolve(&engine, AlgoSpec::BioConsert, 42, None);
//! assert_eq!(first.score, 5);
//!
//! // One edit: O(n²) patch instead of an O(m·n²) rebuild, version bump.
//! let v = session
//!     .add_ranking(Ranking::from_slices(&[&[0], &[1, 2], &[3]]).unwrap())
//!     .unwrap();
//! assert_eq!(v, 2);
//!
//! // Warm re-solve: seeded from the previous consensus.
//! let second = session.resolve(&engine, AlgoSpec::BioConsert, 42, None);
//! assert!(second.score <= first.score + session.matrix().n() as u64 * 4);
//! ```

mod edit;

pub use edit::{Edit, SessionError};

use crate::algorithms::WarmStart;
use crate::dataset::Dataset;
use crate::element::Element;
use crate::engine::{AggregationRequest, AlgoSpec, ConsensusReport, Engine};
use crate::pairs::CostMatrix;
use crate::ranking::Ranking;
use std::sync::Arc;
use std::time::Duration;

/// A mutable dataset with its live, delta-patched [`CostMatrix`], a
/// monotone version counter, and the previous consensus as a warm-start
/// hint (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct DatasetSession {
    /// The current inputs, each complete over `0..n` (unified on entry).
    rankings: Vec<Ranking>,
    /// Current universe size.
    n: usize,
    /// The live matrix — always bit-identical to
    /// `CostMatrix::build(&self.dataset())`.
    matrix: CostMatrix,
    /// Bumped by every successful edit; starts at 1.
    version: u64,
    /// The last recorded consensus (kept complete across universe growth).
    warm: Option<Ranking>,
}

impl DatasetSession {
    /// Open a session over an already validated dataset (version 1, one
    /// cold matrix build — the last one the session ever pays for).
    pub fn new(dataset: Dataset) -> Self {
        let matrix = CostMatrix::build(&dataset);
        DatasetSession {
            n: dataset.n(),
            rankings: dataset.rankings().to_vec(),
            matrix,
            version: 1,
            warm: None,
        }
    }

    /// Number of elements (`n`).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of input rankings (`m`).
    #[inline]
    pub fn m(&self) -> usize {
        self.rankings.len()
    }

    /// The session's current version (1 at creation, +1 per edit).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The live cost matrix.
    #[inline]
    pub fn matrix(&self) -> &CostMatrix {
        &self.matrix
    }

    /// The current input rankings (unified, complete over `0..n`).
    #[inline]
    pub fn rankings(&self) -> &[Ranking] {
        &self.rankings
    }

    /// A frozen snapshot of the current dataset (what a cold rebuild would
    /// aggregate).
    pub fn dataset(&self) -> Dataset {
        Dataset::new(self.rankings.clone()).expect("session rankings stay dense and non-empty")
    }

    /// Append an input ranking, patching the matrix in `O(n²)`.
    ///
    /// The ranking may cover any subset of elements: unseen element ids
    /// grow the universe (every existing input adopts the new elements as
    /// one appended tied bucket, per §5.1 unification), and elements of
    /// the current universe the ranking misses are unified into it the
    /// same way. Returns the new version.
    pub fn add_ranking(&mut self, r: Ranking) -> Result<u64, SessionError> {
        let max_id = match r.elements().map(|e| e.index()).max() {
            None => return Err(SessionError::EmptyRanking),
            Some(id) => id,
        };
        self.grow_to(max_id + 1);
        let unified = unify_to(&r, self.n);
        self.matrix.patch_add(&unified);
        self.rankings.push(unified);
        Ok(self.bump())
    }

    /// Remove the input ranking at `index`, patching the matrix in
    /// `O(n²)`. Returns the new version. The universe never shrinks — an
    /// element mentioned only by the removed ranking stays, tied last in
    /// nothing (its costs simply reflect the remaining inputs).
    pub fn remove_ranking(&mut self, index: usize) -> Result<u64, SessionError> {
        if index >= self.rankings.len() {
            return Err(SessionError::IndexOutOfRange {
                index,
                m: self.rankings.len(),
            });
        }
        if self.rankings.len() == 1 {
            return Err(SessionError::LastRanking);
        }
        let removed = self.rankings.remove(index);
        self.matrix.patch_remove(&removed);
        Ok(self.bump())
    }

    /// Replace the input ranking at `index` (remove + add as **one** edit:
    /// one version bump, and the replacement keeps its slot). Returns the
    /// new version.
    pub fn replace_ranking(&mut self, index: usize, r: Ranking) -> Result<u64, SessionError> {
        if index >= self.rankings.len() {
            return Err(SessionError::IndexOutOfRange {
                index,
                m: self.rankings.len(),
            });
        }
        let max_id = match r.elements().map(|e| e.index()).max() {
            None => return Err(SessionError::EmptyRanking),
            Some(id) => id,
        };
        self.grow_to(max_id + 1);
        let unified = unify_to(&r, self.n);
        // Growth above already re-unified the stored old ranking, so the
        // stored value is exactly what the matrix currently accounts for.
        self.matrix.patch_remove(&self.rankings[index].clone());
        self.matrix.patch_add(&unified);
        self.rankings[index] = unified;
        Ok(self.bump())
    }

    /// Apply one [`Edit`]. Returns the new version.
    pub fn apply(&mut self, edit: Edit) -> Result<u64, SessionError> {
        match edit {
            Edit::Add(r) => self.add_ranking(r),
            Edit::Remove(i) => self.remove_ranking(i),
            Edit::Replace(i, r) => self.replace_ranking(i, r),
        }
    }

    /// Record a consensus of the **current** dataset as the warm-start
    /// hint for the next solve. The hint survives later universe growth
    /// (it is extended like any input) and is rescored lazily, so it stays
    /// valid across edits.
    pub fn record_consensus(&mut self, ranking: Ranking) -> Result<(), SessionError> {
        let complete = ranking.n_elements() == self.n
            && (0..self.n as u32).all(|id| ranking.contains(Element(id)));
        if !complete {
            return Err(SessionError::IncompleteConsensus);
        }
        self.warm = Some(ranking);
        Ok(())
    }

    /// The warm-start hint: the last recorded consensus, rescored against
    /// the **current** matrix (edits since it was recorded change its
    /// score, not its validity). `None` before the first
    /// [`Self::record_consensus`].
    pub fn warm_start(&self) -> Option<WarmStart> {
        self.warm.as_ref().map(|r| WarmStart {
            score: self.matrix.score(r),
            ranking: r.clone(),
        })
    }

    /// An [`AggregationRequest`] over the current dataset, warm-started
    /// from the previous consensus when one was recorded and carrying the
    /// session's delta-patched cost matrix — the engine primes its cache
    /// with it instead of paying the `O(m·n²)` rebuild a fresh dataset
    /// version would otherwise cost (one `O(n²)` copy here buys that).
    pub fn request(&self, spec: AlgoSpec) -> AggregationRequest {
        let mut req = AggregationRequest::new(self.dataset(), spec)
            .with_cost_matrix(Arc::new(self.matrix.clone()));
        if let Some(w) = self.warm_start() {
            req = req.with_warm_start(w);
        }
        req
    }

    /// Solve the current dataset (warm-started when a previous consensus
    /// exists) and record the result as the next warm hint — the
    /// edit/re-solve loop of `rawt session`, in one call.
    pub fn resolve(
        &mut self,
        engine: &Engine,
        spec: AlgoSpec,
        seed: u64,
        budget: Option<Duration>,
    ) -> ConsensusReport {
        let mut req = self.request(spec).with_seed(seed);
        if let Some(b) = budget {
            req = req.with_budget(b);
        }
        let report = engine.run(&req);
        self.record_consensus(report.ranking.clone())
            .expect("engine consensus is complete");
        report
    }

    /// Grow the universe to `n_new` elements: patch the matrix
    /// analytically and append the new elements as one tied bucket to
    /// every stored input and to the warm hint. No-op when the universe
    /// already covers `n_new`.
    fn grow_to(&mut self, n_new: usize) {
        if n_new <= self.n {
            return;
        }
        self.matrix.grow(n_new);
        let fresh: Vec<Element> = (self.n..n_new).map(|i| Element(i as u32)).collect();
        for r in &mut self.rankings {
            *r = append_bucket(r, fresh.clone());
        }
        if let Some(w) = &self.warm {
            self.warm = Some(append_bucket(w, fresh));
        }
        self.n = n_new;
    }

    /// Raise the version counter to `version` (no-op when already past
    /// it). Crash recovery uses this: the service journals a live
    /// dataset's consolidated text together with the version it had
    /// reached, and a session rebuilt from that text must not restart the
    /// count at 1 — live jobs tag emitted incumbents by version, and the
    /// tags must stay monotone across a restart.
    pub fn restore_version(&mut self, version: u64) {
        self.version = self.version.max(version);
    }

    fn bump(&mut self) -> u64 {
        self.version += 1;
        self.version
    }
}

/// `r` with `bucket` appended as a final tied bucket.
fn append_bucket(r: &Ranking, bucket: Vec<Element>) -> Ranking {
    let mut buckets: Vec<Vec<Element>> = r.buckets().map(|b| b.to_vec()).collect();
    buckets.push(bucket);
    Ranking::from_buckets(buckets).expect("appending unseen elements preserves validity")
}

/// `r` unified to the dense universe `0..n`: any elements it misses join a
/// final tied bucket (§5.1 unification).
fn unify_to(r: &Ranking, n: usize) -> Ranking {
    let missing: Vec<Element> = (0..n as u32)
        .map(Element)
        .filter(|&e| !r.contains(e))
        .collect();
    if missing.is_empty() {
        return r.clone();
    }
    append_bucket(r, missing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ranking;

    fn paper_session() -> DatasetSession {
        DatasetSession::new(
            Dataset::new(vec![
                parse_ranking("[{0},{3},{1,2}]").unwrap(),
                parse_ranking("[{0},{1,2},{3}]").unwrap(),
                parse_ranking("[{3},{0,2},{1}]").unwrap(),
            ])
            .unwrap(),
        )
    }

    /// The live matrix must equal a cold rebuild after every edit.
    fn assert_matrix_cold(s: &DatasetSession) {
        assert_eq!(s.matrix(), &CostMatrix::build(&s.dataset()));
    }

    #[test]
    fn add_remove_replace_stay_cold_identical() {
        let mut s = paper_session();
        assert_eq!(s.version(), 1);
        assert_eq!(
            s.add_ranking(parse_ranking("[{1},{0,3},{2}]").unwrap()),
            Ok(2)
        );
        assert_matrix_cold(&s);
        assert_eq!(
            s.replace_ranking(0, parse_ranking("[{2,3},{0},{1}]").unwrap()),
            Ok(3)
        );
        assert_matrix_cold(&s);
        assert_eq!(s.remove_ranking(2), Ok(4));
        assert_matrix_cold(&s);
        assert_eq!(s.m(), 3);
    }

    #[test]
    fn adding_unseen_elements_grows_the_universe() {
        let mut s = paper_session();
        // Element 5 is unseen: universe grows to 6, every stored input
        // adopts {4,5} as an appended tied bucket.
        s.add_ranking(parse_ranking("[{5},{0}]").unwrap()).unwrap();
        assert_eq!(s.n(), 6);
        assert_eq!(s.m(), 4);
        for r in s.rankings() {
            assert_eq!(r.n_elements(), 6);
        }
        // The added ranking itself was unified over the missing elements.
        assert_eq!(
            s.rankings()[3],
            parse_ranking("[{5},{0},{1,2,3,4}]").unwrap()
        );
        assert_matrix_cold(&s);
    }

    #[test]
    fn refused_edits_leave_the_session_untouched() {
        let mut s = paper_session();
        let before = s.clone();
        assert_eq!(
            s.remove_ranking(7),
            Err(SessionError::IndexOutOfRange { index: 7, m: 3 })
        );
        assert_eq!(
            s.replace_ranking(9, parse_ranking("[{0}]").unwrap()),
            Err(SessionError::IndexOutOfRange { index: 9, m: 3 })
        );
        assert_eq!(s.version(), before.version());
        assert_eq!(s.matrix(), before.matrix());
        let mut one =
            DatasetSession::new(Dataset::new(vec![parse_ranking("[{0},{1}]").unwrap()]).unwrap());
        assert_eq!(one.remove_ranking(0), Err(SessionError::LastRanking));
    }

    #[test]
    fn warm_hint_is_rescored_and_survives_growth() {
        let mut s = paper_session();
        let consensus = parse_ranking("[{0},{3},{1,2}]").unwrap();
        s.record_consensus(consensus.clone()).unwrap();
        assert_eq!(s.warm_start().unwrap().score, 5);
        // Growth extends the hint; it stays complete and scoreable.
        s.add_ranking(parse_ranking("[{4},{0}]").unwrap()).unwrap();
        let warm = s.warm_start().unwrap();
        assert_eq!(warm.ranking.n_elements(), 5);
        assert_eq!(warm.score, s.matrix().score(&warm.ranking));
        // A stale-universe consensus is refused.
        assert_eq!(
            s.record_consensus(consensus),
            Err(SessionError::IncompleteConsensus)
        );
    }

    #[test]
    fn resolve_records_the_consensus_as_the_next_hint() {
        let engine = Engine::new();
        let mut s = paper_session();
        let first = s.resolve(&engine, AlgoSpec::Exact, 42, None);
        assert_eq!(first.score, 5);
        let warm = s.warm_start().unwrap();
        assert_eq!(warm.score, 5);
        // After an edit the hint is rescored against the patched matrix.
        s.add_ranking(parse_ranking("[{0},{1,2},{3}]").unwrap())
            .unwrap();
        let warm = s.warm_start().unwrap();
        assert_eq!(warm.score, s.matrix().score(&warm.ranking));
    }
}
