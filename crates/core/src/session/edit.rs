//! Edits and errors of a live dataset session.

use crate::ranking::Ranking;
use std::fmt;

/// One mutation of a [`DatasetSession`](super::DatasetSession)'s input
/// rankings — the unit the service's `PATCH /v1/datasets/{id}` ops and
/// `rawt session`'s command lines both translate into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edit {
    /// Append a new input ranking (growing the element universe when the
    /// ranking mentions unseen elements).
    Add(Ranking),
    /// Remove the input ranking at this index.
    Remove(usize),
    /// Replace the input ranking at this index.
    Replace(usize, Ranking),
}

impl fmt::Display for Edit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edit::Add(r) => write!(f, "add {r}"),
            Edit::Remove(i) => write!(f, "remove {i}"),
            Edit::Replace(i, r) => write!(f, "replace {i} {r}"),
        }
    }
}

/// Why a session edit was refused. Refused edits leave the session
/// untouched — the version is not bumped and the matrix is not patched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The referenced input ranking does not exist.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// Current number of input rankings.
        m: usize,
    },
    /// Removing the last input ranking would empty the dataset (which the
    /// aggregation engine cannot represent).
    LastRanking,
    /// An added or replacement ranking ranks no elements.
    EmptyRanking,
    /// A consensus offered to [`super::DatasetSession::record_consensus`]
    /// does not rank exactly the session's current elements.
    IncompleteConsensus,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::IndexOutOfRange { index, m } => {
                write!(f, "ranking index {index} out of range (dataset has {m})")
            }
            SessionError::LastRanking => {
                write!(f, "cannot remove the last ranking of a dataset")
            }
            SessionError::EmptyRanking => write!(f, "a ranking must rank at least one element"),
            SessionError::IncompleteConsensus => {
                write!(f, "consensus does not cover the session's elements")
            }
        }
    }
}

impl std::error::Error for SessionError {}
