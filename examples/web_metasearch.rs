//! Meta-search: merge the result lists of several search engines.
//!
//! The paper's motivating application ([Dwork et al. 2001]): each engine
//! returns a top-k list over a different URL subset; unification makes the
//! lists comparable (projection would discard ~98% of the URLs, §7.3.1),
//! and a tie-aware aggregation produces the merged ranking. The §7.4
//! guidance module picks the algorithm.
//!
//! Run with: `cargo run --release --example web_metasearch`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_aggregation_with_ties::datasets::realworld::websearch;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::engine::BatchBuilder;

fn main() {
    // A scaled-down query: 4 engines × top-60 results.
    let mut rng = StdRng::seed_from_u64(2001);
    let cfg = websearch::Config {
        engines: 4,
        depth: 60,
    };
    let raw = websearch::generate(&cfg, &mut rng);
    println!("4 engines returned top-{} lists", raw[0].n_elements());

    // The batch builder normalizes the raw top-k lists itself and hands
    // back the element mapping for later display.
    let (builder, unif) =
        BatchBuilder::normalized(&raw, Normalization::Unification).expect("non-empty");
    let proj = projection(&raw).expect("some URLs shared");
    println!(
        "projection keeps {} URLs; unification ranks all {} URLs",
        proj.dataset.n(),
        unif.dataset.n()
    );

    // What does §7.4 say we should run? Guidance names parse straight
    // into typed specs.
    let features = DatasetFeatures::measure(&unif.dataset);
    let specs: Vec<AlgoSpec> = [Priority::Quality, Priority::Speed]
        .iter()
        .map(|&prio| {
            let rec = recommend(&features, prio);
            println!("guidance ({prio:?}): {} — {}", rec.algorithm, rec.rationale);
            AlgoSpec::parse(rec.algorithm).expect("guidance names are registered")
        })
        .collect();

    let reports = Engine::new().run_batch(&builder.specs(specs).seed(7).build());

    let quality = &reports[0];
    let consensus = &quality.ranking;
    println!(
        "\n{} consensus: K = {}, {} buckets (last bucket: {} URLs nobody returned high)",
        quality.algorithm(),
        quality.score,
        consensus.n_buckets(),
        consensus.bucket(consensus.n_buckets() - 1).len(),
    );
    let fast = &reports[1];
    println!(
        "{} consensus: K = {}, {} buckets (m-gap {:.1}% in {:.0?})",
        fast.algorithm(),
        fast.score,
        fast.ranking.n_buckets(),
        100.0 * fast.gap.unwrap_or(f64::NAN),
        fast.elapsed,
    );

    // Top of the merged ranking, in original URL ids.
    let merged = unif.denormalize(consensus);
    let top: Vec<String> = merged
        .elements()
        .take(10)
        .map(|e| format!("url{}", e.0))
        .collect();
    println!("merged top-10: {}", top.join(", "));
}
