//! Meta-search: merge the result lists of several search engines.
//!
//! The paper's motivating application ([Dwork et al. 2001]): each engine
//! returns a top-k list over a different URL subset; unification makes the
//! lists comparable (projection would discard ~98% of the URLs, §7.3.1),
//! and a tie-aware aggregation produces the merged ranking. The §7.4
//! guidance module picks the algorithm.
//!
//! Run with: `cargo run --release --example web_metasearch`

use rank_aggregation_with_ties::datasets::realworld::websearch;
use rank_aggregation_with_ties::rank_core::algorithms::{AlgoContext, ConsensusAlgorithm};
use rank_aggregation_with_ties::rank_core::algorithms::bioconsert::BioConsert;
use rank_aggregation_with_ties::rank_core::algorithms::medrank::MedRank;
use rank_aggregation_with_ties::rank_core::guidance::{recommend, DatasetFeatures, Priority};
use rank_aggregation_with_ties::rank_core::normalize::{projection, unification};
use rank_aggregation_with_ties::rank_core::score::kemeny_score;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A scaled-down query: 4 engines × top-60 results.
    let mut rng = StdRng::seed_from_u64(2001);
    let cfg = websearch::Config {
        engines: 4,
        depth: 60,
    };
    let raw = websearch::generate(&cfg, &mut rng);
    println!("4 engines returned top-{} lists", raw[0].n_elements());

    let proj = projection(&raw).expect("some URLs shared");
    let unif = unification(&raw).expect("non-empty");
    println!(
        "projection keeps {} URLs; unification ranks all {} URLs",
        proj.dataset.n(),
        unif.dataset.n()
    );

    // What does §7.4 say we should run?
    let features = DatasetFeatures::measure(&unif.dataset);
    for prio in [Priority::Quality, Priority::Speed] {
        let rec = recommend(&features, prio);
        println!("guidance ({prio:?}): {} — {}", rec.algorithm, rec.rationale);
    }

    // Quality choice: BioConsert on the unified dataset.
    let mut ctx = AlgoContext::seeded(7);
    let consensus = BioConsert::default().run(&unif.dataset, &mut ctx);
    println!(
        "\nBioConsert consensus: K = {}, {} buckets (last bucket: {} URLs nobody returned high)",
        kemeny_score(&consensus, &unif.dataset),
        consensus.n_buckets(),
        consensus.bucket(consensus.n_buckets() - 1).len(),
    );

    // Speed choice: MEDRank with the paper-recommended threshold.
    let fast = MedRank::new(0.5).run(&unif.dataset, &mut ctx);
    println!(
        "MEDRank(0.5) consensus: K = {}, {} buckets",
        kemeny_score(&fast, &unif.dataset),
        fast.n_buckets()
    );

    // Top of the merged ranking, in original URL ids.
    let merged = unif.denormalize(&consensus);
    let top: Vec<String> = merged
        .elements()
        .take(10)
        .map(|e| format!("url{}", e.0))
        .collect();
    println!("merged top-10: {}", top.join(", "));
}
