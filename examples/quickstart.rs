//! Quickstart: aggregate three rankings with ties into a consensus.
//!
//! Reproduces the paper's §2.2 running example:
//! r1 = [{A},{D},{B,C}], r2 = [{A},{B,C},{D}], r3 = [{D},{A,C},{B}] —
//! the optimal consensus is [{A},{D},{B,C}] with generalized Kemeny
//! score 5.
//!
//! The engine API in one screen: build a dataset, submit a request batch
//! (the exact solver plus the paper's whole panel), read the reports.
//!
//! Run with: `cargo run --release --example quickstart`

use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::parse::parse_ranking_labeled;

fn main() {
    let mut universe = Universe::new();
    let inputs = ["[{A},{D},{B,C}]", "[{A},{B,C},{D}]", "[{D},{A,C},{B}]"];
    let rankings = inputs
        .iter()
        .map(|text| parse_ranking_labeled(text, &mut universe).expect("valid ranking"))
        .collect();
    let data = Dataset::new(rankings).expect("all rankings cover A..D");

    println!("input rankings:");
    for (i, r) in data.rankings().iter().enumerate() {
        println!("  r{} = {}", i + 1, r.display_with(&universe));
    }

    // One request batch: the exact solver first, then the paper's panel.
    // The engine runs them concurrently over a single cost-matrix build
    // and returns one report per request, in request order.
    let engine = Engine::new();
    let requests = AggregationRequest::batch(data)
        .spec(AlgoSpec::Exact)
        .specs(paper_panel(10))
        .seed(42)
        .build();
    let reports = engine.run_batch(&requests);

    let optimal = &reports[0];
    assert_eq!(optimal.outcome, Outcome::Optimal, "n = 4 solves instantly");
    assert_eq!(optimal.score, 5, "the paper's example scores 5");
    println!(
        "\noptimal consensus: {}   K = {}   ({})",
        optimal.ranking.display_with(&universe),
        optimal.score,
        optimal.outcome
    );

    println!("\nalgorithm panel:");
    for report in &reports[1..] {
        println!(
            "  {:<16} {}  (K = {}, gap = {:.1}%, {:.0?})",
            report.algorithm(),
            report.ranking.display_with(&universe),
            report.score,
            100.0 * report.gap.unwrap_or(f64::NAN),
            report.elapsed,
        );
    }
    println!(
        "\ncost-matrix builds for the whole batch: {}",
        engine.cache().builds()
    );
}
