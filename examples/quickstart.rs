//! Quickstart: aggregate three rankings with ties into a consensus.
//!
//! Reproduces the paper's §2.2 running example:
//! r1 = [{A},{D},{B,C}], r2 = [{A},{B,C},{D}], r3 = [{D},{A,C},{B}] —
//! the optimal consensus is [{A},{D},{B,C}] with generalized Kemeny
//! score 5.
//!
//! Run with: `cargo run --release --example quickstart`

use rank_aggregation_with_ties::rank_core::algorithms::exact::ExactAlgorithm;
use rank_aggregation_with_ties::rank_core::algorithms::{paper_algorithms, AlgoContext};
use rank_aggregation_with_ties::rank_core::parse::parse_ranking_labeled;
use rank_aggregation_with_ties::rank_core::score::kemeny_score;
use rank_aggregation_with_ties::rank_core::{Dataset, Universe};

fn main() {
    let mut universe = Universe::new();
    let inputs = ["[{A},{D},{B,C}]", "[{A},{B,C},{D}]", "[{D},{A,C},{B}]"];
    let rankings = inputs
        .iter()
        .map(|text| parse_ranking_labeled(text, &mut universe).expect("valid ranking"))
        .collect();
    let data = Dataset::new(rankings).expect("all rankings cover A..D");

    println!("input rankings:");
    for (i, r) in data.rankings().iter().enumerate() {
        println!("  r{} = {}", i + 1, r.display_with(&universe));
    }

    // The exact optimum (branch-and-bound over all bucket orders).
    let mut ctx = AlgoContext::seeded(42);
    let (optimal, score, proved) = ExactAlgorithm::default().solve(&data, &mut ctx);
    println!(
        "\noptimal consensus: {}   K = {score}   (optimality proved: {proved})",
        optimal.display_with(&universe)
    );
    assert_eq!(score, 5, "the paper's example scores 5");

    // Every algorithm of the paper's panel on the same input.
    println!("\nalgorithm panel:");
    for algo in paper_algorithms(10) {
        let consensus = algo.run(&data, &mut ctx);
        println!(
            "  {:<16} {}  (K = {})",
            algo.name(),
            consensus.display_with(&universe),
            kemeny_score(&consensus, &data)
        );
    }
}
