//! Consensus gene ranking across reformulated biomedical queries.
//!
//! The BioConsert use case ([Cohen-Boulakia, Denise, Hamel 2011], the
//! paper's BioMedical collection): each query reformulation returns a
//! ranked gene list *with ties* (equal relevance scores) over a slightly
//! different gene set. We unify, aggregate, and compare the tie-aware
//! consensus with a positional one.
//!
//! Run with: `cargo run --release --example biomedical_genes`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_aggregation_with_ties::datasets::realworld::biomedical;
use rank_aggregation_with_ties::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2011);
    let cfg = biomedical::Config {
        genes_range: (12, 18), // small enough to solve exactly
        ..biomedical::Config::default()
    };
    let raw = biomedical::generate(&cfg, &mut rng);
    println!(
        "{} query reformulations, gene lists of sizes {:?}",
        raw.len(),
        raw.iter().map(|r| r.n_elements()).collect::<Vec<_>>()
    );
    println!(
        "rankings contain ties: {}",
        raw.iter().any(|r| !r.is_permutation())
    );

    let unif = unification(&raw).expect("non-empty");
    let data = &unif.dataset;
    println!(
        "unified over {} genes, similarity s(R) = {:.2}",
        data.n(),
        dataset_similarity(data)
    );

    // One batch: the exact optimum as reference, the tie-aware local
    // search, and a positional baseline. The engine fills every report's
    // gap against the proven optimum.
    let reports = Engine::new().run_batch(
        &AggregationRequest::batch(data.clone())
            .spec(AlgoSpec::Exact)
            .spec(AlgoSpec::BioConsert)
            .spec(AlgoSpec::Borda)
            .seed(3)
            .build(),
    );
    let (exact, bio, borda) = (&reports[0], &reports[1], &reports[2]);

    println!("\n                    K score   vs optimum");
    println!(
        "  optimal           {:>6}      (proved: {})",
        exact.score,
        exact.outcome == Outcome::Optimal
    );
    for r in [bio, borda] {
        println!(
            "  {:<16}  {:>6}      gap {:.1}%",
            r.algorithm(),
            r.score,
            100.0 * r.gap.unwrap_or(f64::NAN)
        );
    }
    assert!(
        bio.score <= borda.score,
        "tie-aware local search beats positional here"
    );

    // Tied genes in the consensus = "no evidence to separate them".
    let tied_groups = bio.ranking.buckets().filter(|b| b.len() > 1).count();
    println!("\nBioConsert keeps {tied_groups} tied gene groups (no forced untying)");
}
