//! Consensus gene ranking across reformulated biomedical queries.
//!
//! The BioConsert use case ([Cohen-Boulakia, Denise, Hamel 2011], the
//! paper's BioMedical collection): each query reformulation returns a
//! ranked gene list *with ties* (equal relevance scores) over a slightly
//! different gene set. We unify, aggregate, and compare the tie-aware
//! consensus with a positional one.
//!
//! Run with: `cargo run --release --example biomedical_genes`

use rank_aggregation_with_ties::datasets::realworld::biomedical;
use rank_aggregation_with_ties::rank_core::algorithms::bioconsert::BioConsert;
use rank_aggregation_with_ties::rank_core::algorithms::borda::BordaCount;
use rank_aggregation_with_ties::rank_core::algorithms::exact::ExactAlgorithm;
use rank_aggregation_with_ties::rank_core::algorithms::{AlgoContext, ConsensusAlgorithm};
use rank_aggregation_with_ties::rank_core::normalize::unification;
use rank_aggregation_with_ties::rank_core::score::kemeny_score;
use rank_aggregation_with_ties::rank_core::similarity::dataset_similarity;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2011);
    let cfg = biomedical::Config {
        genes_range: (12, 18), // small enough to solve exactly
        ..biomedical::Config::default()
    };
    let raw = biomedical::generate(&cfg, &mut rng);
    println!(
        "{} query reformulations, gene lists of sizes {:?}",
        raw.len(),
        raw.iter().map(|r| r.n_elements()).collect::<Vec<_>>()
    );
    println!(
        "rankings contain ties: {}",
        raw.iter().any(|r| !r.is_permutation())
    );

    let unif = unification(&raw).expect("non-empty");
    let data = &unif.dataset;
    println!(
        "unified over {} genes, similarity s(R) = {:.2}",
        data.n(),
        dataset_similarity(data)
    );

    let mut ctx = AlgoContext::seeded(3);
    let bio = BioConsert::default().run(data, &mut ctx);
    let borda = BordaCount.run(data, &mut ctx);
    let (_, optimum, proved) = ExactAlgorithm::default().solve(data, &mut ctx);

    println!("\n                    K score   vs optimum");
    let gap = |s: u64| rank_aggregation_with_ties::rank_core::score::gap(s, optimum);
    let s_bio = kemeny_score(&bio, data);
    let s_borda = kemeny_score(&borda, data);
    println!("  optimal           {optimum:>6}      (proved: {proved})");
    println!("  BioConsert        {s_bio:>6}      gap {:.1}%", 100.0 * gap(s_bio));
    println!("  BordaCount        {s_borda:>6}      gap {:.1}%", 100.0 * gap(s_borda));
    assert!(s_bio <= s_borda, "tie-aware local search beats positional here");

    // Tied genes in the consensus = "no evidence to separate them".
    let tied_groups = bio.buckets().filter(|b| b.len() > 1).count();
    println!("\nBioConsert keeps {tied_groups} tied gene groups (no forced untying)");
}
