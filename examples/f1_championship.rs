//! Ranking a Formula 1 season from its race results.
//!
//! Shows the §7.3.1 normalization trap: *projection* drops every pilot who
//! missed a race — in the real 1961/1970 data that included a
//! vice-champion and a champion. *Unification* keeps everyone and lets a
//! tie-aware algorithm rank partially-present pilots fairly.
//!
//! Run with: `cargo run --release --example f1_championship`

use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_aggregation_with_ties::datasets::realworld::f1;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::normalize::threshold_k;

fn main() {
    // Search for a season where projection removes a race winner — the
    // paper's champion anecdote.
    let cfg = f1::Config::default();
    let mut season = None;
    for seed in 0..200 {
        let mut rng = StdRng::seed_from_u64(seed);
        let raw = f1::generate(&cfg, &mut rng);
        let proj = projection(&raw).expect("regulars finish every race");
        let winner = raw[0].bucket(0)[0]; // winner of the first race
        if !proj.mapping.contains(&winner) {
            season = Some((raw, proj, winner));
            break;
        }
    }
    let (raw, proj, dropped_winner) = season.expect("such a season exists");

    println!("season: {} races over {} pilots total", raw.len(), {
        let u = unification(&raw).unwrap();
        u.dataset.n()
    });
    println!(
        "projection keeps only {} pilots — and DROPS pilot #{}, who won race 1!",
        proj.dataset.n(),
        dropped_winner.0
    );

    // Unification keeps everyone.
    let unif = unification(&raw).expect("non-empty");
    println!(
        "unification ranks all {} pilots (season similarity s(R) = {:.2})",
        unif.dataset.n(),
        dataset_similarity(&unif.dataset)
    );

    let engine = Engine::new();
    let report = engine
        .run(&AggregationRequest::new(unif.dataset.clone(), AlgoSpec::BioConsert).with_seed(1));
    let podium: Vec<String> = unif
        .denormalize(&report.ranking)
        .elements()
        .take(3)
        .map(|e| format!("pilot #{}", e.0))
        .collect();
    println!("BioConsert season standings podium: {}", podium.join(", "));

    // The §8 middle ground: require presence in at least half the races.
    let half = threshold_k(&raw, raw.len() / 2).expect("non-empty");
    println!(
        "threshold-k (≥{} races) keeps {} pilots — between projection ({}) and unification ({})",
        raw.len() / 2,
        half.dataset.n(),
        proj.dataset.n(),
        unif.dataset.n()
    );
}
