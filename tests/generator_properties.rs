//! Generator invariants across crates: validity, support preservation,
//! similarity control, exact-uniformity bookkeeping.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_aggregation_with_ties::bignum::combinatorics::FubiniTable;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::ragen::markov::{MoveOp, WalkState};
use rank_aggregation_with_ties::ragen::{MarkovGen, UnifiedGen, UniformSampler};

#[test]
fn uniform_sampler_bucket_statistics() {
    // E[#buckets] for n = 4 under uniformity: Σ_r buckets(r) / 75.
    // Bucket orders of 4 elements by bucket count: 1 bucket ×1, 2 ×14,
    // 3 ×36, 4 ×24 (total 75; weighted sum = 1 + 28 + 108 + 96 = 233).
    let expected = 233.0 / 75.0;
    let sampler = UniformSampler::new(4);
    let mut rng = StdRng::seed_from_u64(0);
    let draws = 20_000;
    let total: usize = (0..draws)
        .map(|_| sampler.sample(4, &mut rng).n_buckets())
        .sum();
    let mean = total as f64 / draws as f64;
    assert!(
        (mean - expected).abs() < 0.03,
        "E[buckets] = {mean}, expected {expected}"
    );
}

#[test]
fn fubini_table_agrees_with_sampler_capacity() {
    let t = FubiniTable::up_to(12);
    let s = UniformSampler::new(12);
    for n in 0..=12 {
        assert_eq!(s.count(n), t.get(n));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn markov_walks_preserve_support(n in 2usize..=30, t in 0usize..=500, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = WalkState::identity(n);
        state.walk(t, &mut rng);
        let r = state.to_ranking();
        prop_assert_eq!(r.n_elements(), n);
        for id in 0..n as u32 {
            prop_assert!(r.contains(Element(id)));
        }
    }

    #[test]
    fn markov_moves_are_reversible(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = WalkState::identity(6);
        s.walk(50, &mut rng);
        let before = s.clone();
        for e in 0..6 {
            for op in MoveOp::ALL {
                let mut probe = before.clone();
                if probe.try_move(e, op) {
                    let mut restored = false;
                    for rev in MoveOp::ALL {
                        let mut q = probe.clone();
                        if q.try_move(e, rev) && q == before {
                            restored = true;
                            break;
                        }
                    }
                    prop_assert!(restored, "move {op:?} on {e} not reversible");
                }
            }
        }
    }

    #[test]
    fn uniform_datasets_are_valid(n in 2usize..=40, m in 1usize..=10, seed in 0u64..100) {
        let sampler = UniformSampler::new(40);
        let mut rng = StdRng::seed_from_u64(seed);
        let d = sampler.sample_dataset(n, m, &mut rng);
        prop_assert_eq!(d.n(), n);
        prop_assert_eq!(d.m(), m);
    }
}

#[test]
fn markov_similarity_is_monotone_in_expectation() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut means = Vec::new();
    for &t in &[10usize, 200, 5_000] {
        let gen = MarkovGen::identity_seeded(25, t);
        let mean: f64 = (0..8)
            .map(|_| dataset_similarity(&gen.dataset(5, &mut rng)))
            .sum::<f64>()
            / 8.0;
        means.push(mean);
    }
    assert!(
        means[0] > means[1] && means[1] > means[2],
        "similarity must decay with steps: {means:?}"
    );
}

#[test]
fn unified_generator_produces_unification_buckets() {
    let mut rng = StdRng::seed_from_u64(9);
    let gen = UnifiedGen {
        n_full: 60,
        t: 100_000,
        target_n: 20,
    };
    let (data, k, norm) = gen.generate(5, &mut rng);
    assert!(data.n() >= 20);
    assert!(k >= 1);
    assert_eq!(norm.dataset.n(), data.n());
    // Dissimilar top-k lists → at least one ranking has a big last bucket.
    let max_last = data
        .rankings()
        .iter()
        .map(|r| r.bucket(r.n_buckets() - 1).len())
        .max()
        .unwrap();
    assert!(
        max_last > 1,
        "expected a unification bucket, got {max_last}"
    );
}
