//! End-to-end tests of `POST /v1/batches` (DESIGN.md §14.1) and the
//! bearer-token satellite: a batch over one dataset runs the whole spec
//! panel off a single cost-matrix build, reports match the in-process
//! [`Engine::run_batch`] on every deterministic field, the merged event
//! stream tags each line with its spec and sub-job, and an
//! authenticated server 401s everything except `GET /healthz`.

use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::parse::parse_dataset_lines;
use rank_aggregation_with_ties::rank_core::Universe;
use service::client::{Client, ClientError};
use service::json::Json;
use service::proto::{BatchSubmission, JobSubmission, MAX_BATCH_SPECS};
use service::server::{Server, ServerConfig, ShutdownHandle};

fn start_server(config: ServerConfig) -> (Client, ShutdownHandle, String) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_handle().expect("shutdown handle");
    std::thread::spawn(move || server.serve());
    (Client::new(&addr), shutdown, addr)
}

const PAPER_EXAMPLE: &str =
    "# the paper's §2.2 example\n[{A},{D},{B,C}]\n[{A},{B,C},{D}]\n[{D},{A,C},{B}]\n";

const PANEL: [&str; 4] = ["BioConsert", "Exact", "Borda", "KwikSort"];

fn panel_submission() -> BatchSubmission {
    BatchSubmission {
        seed: 7,
        ..BatchSubmission::new(PAPER_EXAMPLE, PANEL.iter().map(|s| s.to_string()).collect())
    }
}

/// The acceptance bar: a batch over the wire produces, per spec, the
/// same report as [`Engine::run_batch`] locally — score, outcome, seed
/// and ranking bit-identical (elapsed is wall clock; the wire `gap` is
/// the per-run certified gap, while `run_batch` rewrites gaps into
/// batch-relative m-gaps as a postprocess, so gaps are compared against
/// the scores both sides share).
#[test]
fn batch_reports_match_local_run_batch() {
    let (client, shutdown, _) = start_server(ServerConfig::default());

    // Local reference: parse + normalize exactly as the server does.
    let mut universe = Universe::new();
    let raw = parse_dataset_lines(PAPER_EXAMPLE, &mut universe).expect("parse");
    let norm = Normalization::Unification.apply(&raw).expect("normalize");
    let requests: Vec<AggregationRequest> = PANEL
        .iter()
        .map(|spec| {
            AggregationRequest::new(norm.dataset.clone(), AlgoSpec::parse(spec).expect("spec"))
                .with_seed(7)
        })
        .collect();
    let local = Engine::new().run_batch(&requests);

    let batch = client
        .submit_batch(&panel_submission())
        .expect("submit batch");
    assert_eq!(batch.jobs.len(), PANEL.len(), "one sub-job per spec");
    assert!(!batch.deduplicated);
    let status = client.wait_batch(batch.id).expect("wait batch");
    let jobs = status.get("jobs").and_then(Json::as_array).expect("jobs");
    assert_eq!(jobs.len(), PANEL.len());

    for ((job, local_report), spec) in jobs.iter().zip(&local).zip(PANEL) {
        assert_eq!(
            job.get("spec").and_then(Json::as_str),
            Some(local_report.spec.to_string().as_str()),
            "{spec}: sub-jobs must come back in request order"
        );
        let report = job.get("report").expect("report present");
        assert!(!report.is_null(), "{spec}: report must be final");
        assert_eq!(
            report.get("score").and_then(Json::as_u64),
            Some(local_report.score),
            "{spec}: scores must match"
        );
        assert_eq!(
            report.get("outcome").and_then(Json::as_str),
            Some(local_report.outcome.to_string().as_str()),
            "{spec}: outcomes must match"
        );
        assert_eq!(
            report.get("seed").and_then(Json::as_u64),
            Some(7),
            "{spec}: seed provenance"
        );
        let remote_ranking = report.get("ranking").expect("ranking").to_string();
        let local_ranking =
            service::proto::ranking_json(&norm.denormalize(&local_report.ranking), &universe);
        assert_eq!(
            Json::parse(&remote_ranking).expect("remote ranking"),
            Json::parse(&local_ranking).expect("local ranking"),
            "{spec}: rankings must match"
        );
    }
    shutdown.shutdown();
}

/// The amortization claim the batch endpoint exists for: the whole
/// panel rides ONE O(m·n²) cost-matrix build, observable through the
/// healthz `matrix_builds` counter. The panel here is heuristics-only:
/// `Exact` legitimately builds a second matrix over each *derived*
/// block dataset when its decomposition splits the instance (a
/// different fingerprint, not a cache miss on the submitted dataset),
/// which would obscure the one-build-per-submitted-dataset claim this
/// test pins.
#[test]
fn batched_panel_shares_one_matrix_build() {
    let (client, shutdown, _) = start_server(ServerConfig::default());
    let before = client
        .healthz()
        .expect("healthz")
        .get("matrix_builds")
        .and_then(Json::as_u64)
        .expect("matrix_builds in healthz");
    let heuristics = BatchSubmission {
        seed: 7,
        ..BatchSubmission::new(
            PAPER_EXAMPLE,
            ["BioConsert", "Borda", "KwikSort", "Chanas"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        )
    };
    let batch = client.submit_batch(&heuristics).expect("submit batch");
    client.wait_batch(batch.id).expect("wait batch");
    let after = client
        .healthz()
        .expect("healthz")
        .get("matrix_builds")
        .and_then(Json::as_u64)
        .expect("matrix_builds in healthz");
    assert_eq!(
        after - before,
        1,
        "a 4-spec heuristic batch over one dataset must build exactly one matrix"
    );
    shutdown.shutdown();
}

/// The merged stream: every line is tagged with its spec and sub-job
/// id, heartbeat-free here (the panel finishes fast), and each sub-job
/// contributes a complete started→finished lifecycle.
#[test]
fn batch_event_stream_is_tagged_and_complete() {
    let (client, shutdown, _) = start_server(ServerConfig::default());
    let batch = client
        .submit_batch(&panel_submission())
        .expect("submit batch");
    let mut started = std::collections::HashSet::new();
    let mut finished = std::collections::HashSet::new();
    for event in client.batch_events(batch.id).expect("stream") {
        let event = event.expect("event line");
        if event.get("event").and_then(Json::as_str) == Some("heartbeat") {
            continue;
        }
        let spec = event
            .get("spec")
            .and_then(Json::as_str)
            .expect("every merged line is tagged with its spec")
            .to_owned();
        let job = event
            .get("job")
            .and_then(Json::as_u64)
            .expect("every merged line is tagged with its sub-job id");
        assert!(
            batch.jobs.iter().any(|j| j.id == job && j.spec == spec),
            "tag ({spec}, {job}) must name a submitted sub-job"
        );
        match event.get("event").and_then(Json::as_str) {
            Some("started") => {
                started.insert(spec);
            }
            Some("finished") => {
                finished.insert(spec);
            }
            _ => {}
        }
    }
    for spec in PANEL {
        // The canonical spec string may differ in case from the request
        // string; compare through the parsed spec.
        let canonical = AlgoSpec::parse(spec).expect("spec").to_string();
        assert!(started.contains(&canonical), "{spec}: no started event");
        assert!(finished.contains(&canonical), "{spec}: no finished event");
    }
    shutdown.shutdown();
}

/// Batch validation: bad specs 400 with the offending spec named, an
/// empty panel 400s, and an oversized panel is rejected before
/// admission.
#[test]
fn batch_validation_rejects_bad_panels() {
    let (client, shutdown, _) = start_server(ServerConfig::default());
    let bad_spec = BatchSubmission::new(PAPER_EXAMPLE, vec!["NoSuchAlgo".into()]);
    match client.submit_batch(&bad_spec) {
        Err(ClientError::Status {
            status: 400, body, ..
        }) => {
            assert!(
                body.contains("NoSuchAlgo"),
                "400 must name the bad spec: {body}"
            );
        }
        other => panic!("bad spec must 400, got {other:?}"),
    }
    let empty = BatchSubmission::new(PAPER_EXAMPLE, Vec::new());
    assert!(
        matches!(
            client.submit_batch(&empty),
            Err(ClientError::Status { status: 400, .. })
        ),
        "empty panel must 400"
    );
    let oversized = BatchSubmission::new(
        PAPER_EXAMPLE,
        (0..=MAX_BATCH_SPECS).map(|_| "Borda".to_owned()).collect(),
    );
    assert!(
        matches!(
            client.submit_batch(&oversized),
            Err(ClientError::Status { status: 400, .. })
        ),
        "panel beyond MAX_BATCH_SPECS must 400"
    );
    shutdown.shutdown();
}

/// Idempotency keys work for batches exactly as for jobs: a resubmission
/// with the same key reattaches (HTTP 200, `deduplicated: true`) to the
/// batch the first request created, same id, same sub-jobs.
#[test]
fn batch_idempotency_key_deduplicates() {
    let (client, shutdown, _) = start_server(ServerConfig::default());
    let submission = BatchSubmission {
        idempotency_key: Some("panel-once".into()),
        ..panel_submission()
    };
    let first = client.submit_batch(&submission).expect("first submit");
    let second = client.submit_batch(&submission).expect("second submit");
    assert!(!first.deduplicated);
    assert!(second.deduplicated, "same key must deduplicate");
    assert_eq!(first.id, second.id);
    assert_eq!(first.jobs, second.jobs);
    shutdown.shutdown();
}

/// The bearer-token satellite: with `--token` everything except
/// `GET /healthz` requires `Authorization: Bearer <token>`; the right
/// token passes end to end; a wrong or missing one gets 401.
#[test]
fn bearer_token_guards_everything_but_healthz() {
    let (bare, shutdown, addr) = start_server(ServerConfig {
        token: Some("s3cret".into()),
        ..ServerConfig::default()
    });

    // Unauthenticated: probes pass, work does not.
    assert_eq!(
        bare.healthz()
            .expect("healthz stays open")
            .get("status")
            .and_then(Json::as_str),
        Some("ok")
    );
    let submission = JobSubmission {
        algo: Some("Exact".into()),
        ..JobSubmission::new(PAPER_EXAMPLE)
    };
    assert!(
        matches!(
            bare.submit(&submission),
            Err(ClientError::Status { status: 401, .. })
        ),
        "missing token must 401"
    );
    assert!(
        matches!(
            bare.submit_batch(&panel_submission()),
            Err(ClientError::Status { status: 401, .. })
        ),
        "missing token must 401 for batches too"
    );

    // Wrong token: same refusal.
    let wrong = Client::with_token(&addr, "not-it");
    assert!(
        matches!(
            wrong.submit(&submission),
            Err(ClientError::Status { status: 401, .. })
        ),
        "wrong token must 401"
    );

    // Right token: full lifecycle works, streams included.
    let authed = Client::with_token(&addr, "s3cret");
    let job = authed.submit(&submission).expect("authenticated submit");
    let done = authed.wait(job.id).expect("authenticated wait");
    assert_eq!(
        done.get("report")
            .and_then(|r| r.get("score"))
            .and_then(Json::as_u64),
        Some(5),
        "the §2.2 example's optimal score"
    );
    shutdown.shutdown();
}
