//! Property-based tests of the distance layer (§2.2), with random
//! rankings-with-ties as inputs.

use proptest::prelude::*;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::distance::{
    generalized_kendall_tau, kendall_tau, pair_counts, pair_counts_naive, spearman_footrule,
};

/// Random ranking with ties over 0..n: bucket index per element, compacted.
fn ranking_strategy(n: usize) -> impl Strategy<Value = Ranking> {
    prop::collection::vec(0..n as u32, n).prop_map(|idx| {
        let mut used: Vec<u32> = idx.clone();
        used.sort_unstable();
        used.dedup();
        let remap: Vec<u32> = idx
            .iter()
            .map(|v| used.iter().position(|u| u == v).unwrap() as u32)
            .collect();
        Ranking::from_bucket_indices(&remap).expect("compacted indices")
    })
}

fn pair_of_rankings() -> impl Strategy<Value = (Ranking, Ranking)> {
    (2usize..=24).prop_flat_map(|n| (ranking_strategy(n), ranking_strategy(n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fast_matches_naive((r, s) in pair_of_rankings()) {
        prop_assert_eq!(pair_counts(&r, &s), pair_counts_naive(&r, &s));
    }

    #[test]
    fn counts_partition_all_pairs((r, s) in pair_of_rankings()) {
        let n = r.n_elements() as u64;
        prop_assert_eq!(pair_counts(&r, &s).total(), n * (n - 1) / 2);
    }

    #[test]
    fn identity_of_indiscernibles(r in (2usize..=24).prop_flat_map(ranking_strategy)) {
        prop_assert_eq!(generalized_kendall_tau(&r, &r), 0);
    }

    #[test]
    fn distinct_rankings_have_positive_distance((r, s) in pair_of_rankings()) {
        if r != s {
            prop_assert!(generalized_kendall_tau(&r, &s) > 0,
                         "G must separate distinct bucket orders");
        }
    }

    #[test]
    fn symmetry((r, s) in pair_of_rankings()) {
        prop_assert_eq!(generalized_kendall_tau(&r, &s), generalized_kendall_tau(&s, &r));
    }

    #[test]
    fn triangle_inequality(
        (r, s, t) in (2usize..=16).prop_flat_map(|n| {
            (ranking_strategy(n), ranking_strategy(n), ranking_strategy(n))
        })
    ) {
        let rs = generalized_kendall_tau(&r, &s);
        let st = generalized_kendall_tau(&s, &t);
        let rt = generalized_kendall_tau(&r, &t);
        prop_assert!(rt <= rs + st, "triangle violated: {rt} > {rs} + {st}");
    }

    #[test]
    fn classical_is_a_lower_bound((r, s) in pair_of_rankings()) {
        // D counts only strict inversions, a subset of G's disagreements.
        prop_assert!(kendall_tau(&r, &s) <= generalized_kendall_tau(&r, &s));
    }

    #[test]
    fn coincides_with_kendall_on_permutations(
        (a, b) in (2usize..=20).prop_flat_map(|n| {
            let perm = Just(n).prop_flat_map(|n| {
                prop::collection::vec(0..u32::MAX, n).prop_map(move |keys| {
                    let mut order: Vec<u32> = (0..n as u32).collect();
                    order.sort_by_key(|&i| keys[i as usize]);
                    Ranking::permutation(
                        &order.into_iter().map(Element).collect::<Vec<_>>()
                    ).unwrap()
                })
            });
            (perm.clone(), perm)
        })
    ) {
        prop_assert_eq!(generalized_kendall_tau(&a, &b), kendall_tau(&a, &b));
    }

    #[test]
    fn tau_correlation_in_range((r, s) in pair_of_rankings()) {
        let t = tau_correlation(&r, &s);
        prop_assert!((-1.0..=1.0).contains(&t), "τ = {t}");
    }

    #[test]
    fn footrule_nonnegative_and_symmetric((r, s) in pair_of_rankings()) {
        let f = spearman_footrule(&r, &s);
        prop_assert!(f >= 0.0);
        prop_assert_eq!(f, spearman_footrule(&s, &r));
    }

    #[test]
    fn max_distance_is_all_pairs((r, _s) in pair_of_rankings()) {
        // G against the reversal of a permutationized version never
        // exceeds C(n,2).
        let n = r.n_elements() as u64;
        let rev = r.reversed();
        prop_assert!(generalized_kendall_tau(&r, &rev) <= n * (n - 1) / 2);
    }
}
