//! Cross-validation of the three exact solvers on random instances, and
//! the optimality invariants the rest of the suite relies on.

use proptest::prelude::*;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::ragen::UniformSampler;
use rank_aggregation_with_ties::rank_core::algorithms::exact::{
    brute_force, ExactAlgorithm, ExactLpb,
};

fn dataset_strategy(max_n: usize, max_m: usize) -> impl Strategy<Value = Dataset> {
    (2usize..=max_n, 2usize..=max_m).prop_flat_map(|(n, m)| {
        prop::collection::vec(prop::collection::vec(0..n as u32, n), m).prop_map(move |all_idx| {
            let rankings: Vec<Ranking> = all_idx
                .into_iter()
                .map(|idx| {
                    let mut used = idx.clone();
                    used.sort_unstable();
                    used.dedup();
                    let remap: Vec<u32> = idx
                        .iter()
                        .map(|v| used.iter().position(|u| u == v).unwrap() as u32)
                        .collect();
                    Ranking::from_bucket_indices(&remap).expect("compacted")
                })
                .collect();
            Dataset::new(rankings).expect("dense by construction")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn native_bnb_matches_brute_force(data in dataset_strategy(6, 5)) {
        let (bf_score, _) = brute_force(&data);
        let mut ctx = AlgoContext::seeded(9);
        let (ranking, score, proved) = ExactAlgorithm::default().solve(&data, &mut ctx);
        prop_assert!(proved);
        prop_assert_eq!(score, bf_score);
        prop_assert_eq!(kemeny_score(&ranking, &data), score);
    }

    #[test]
    fn lpb_matches_brute_force(data in dataset_strategy(5, 4)) {
        let (bf_score, _) = brute_force(&data);
        let (ranking, score) = ExactLpb::default().solve(&data);
        prop_assert_eq!(score, bf_score);
        prop_assert_eq!(kemeny_score(&ranking, &data), score);
    }

    #[test]
    fn every_heuristic_respects_the_optimum(data in dataset_strategy(6, 5)) {
        let (opt, _) = brute_force(&data);
        for algo in paper_algorithms(2) {
            let r = algo.run(&data, &mut AlgoContext::seeded(17));
            prop_assert!(kemeny_score(&r, &data) >= opt, "{}", algo.name());
        }
    }

    #[test]
    fn pick_a_perm_two_approximation(data in dataset_strategy(6, 5)) {
        // The derandomized Pick-a-Perm (min-cost input) is a worst-case
        // 2-approximation.
        let (opt, _) = brute_force(&data);
        let best_input = data
            .rankings()
            .iter()
            .map(|r| kemeny_score(r, &data))
            .min()
            .unwrap();
        prop_assert!(best_input <= 2 * opt, "{best_input} > 2 × {opt}");
    }
}

#[test]
fn exact_on_uniform_data_matches_brute_force() {
    // Deterministic sweep over exactly-uniform instances (the harness's
    // actual workload shape).
    let sampler = UniformSampler::new(7);
    let mut rng = rand::SeedableRng::seed_from_u64(5);
    for trial in 0..10 {
        let data = sampler.sample_dataset(6, 4 + trial % 4, &mut rng);
        let (bf, _) = brute_force(&data);
        let mut ctx = AlgoContext::seeded(trial as u64);
        let (_, score, proved) = ExactAlgorithm::default().solve(&data, &mut ctx);
        assert!(proved);
        assert_eq!(score, bf, "trial {trial}");
    }
}

#[test]
fn exact_handles_moderate_n_within_default_budget() {
    // n = 18 uniform: must prove optimality without a deadline in sane
    // time (regression guard for the lower bound).
    let sampler = UniformSampler::new(18);
    let mut rng = rand::SeedableRng::seed_from_u64(6);
    let data = sampler.sample_dataset(18, 7, &mut rng);
    let mut ctx = AlgoContext::seeded(0);
    let start = std::time::Instant::now();
    let (_, score, proved) = ExactAlgorithm::default().solve(&data, &mut ctx);
    assert!(proved, "n=18 must be provable");
    assert!(score > 0);
    assert!(
        start.elapsed().as_secs() < 60,
        "exact solver too slow: {:?}",
        start.elapsed()
    );
}
