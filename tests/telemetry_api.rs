//! Telemetry tests (DESIGN.md §15): histogram bucket discipline and
//! merge algebra, the `/metrics` Prometheus exposition (parse ↔ render
//! round-trip, tier coverage), per-job phase breakdowns summing to the
//! reported wall clock, router fleet re-namespacing (`worker="ADDR"`),
//! the configurable heartbeat cadence, and the rule that a journal
//! restart starts a *fresh* registry — recovered jobs are re-served,
//! never re-counted.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::ragen::UniformSampler;
use rank_aggregation_with_ties::rank_core::parse::parse_dataset_lines;
use rank_aggregation_with_ties::rank_core::telemetry::{
    bucket_bound_secs, parse_exposition, render_families, Family, Histogram, HistogramSnapshot,
    MetricKind, HISTOGRAM_BUCKETS,
};
use rank_aggregation_with_ties::rank_core::Universe;
use service::client::Client;
use service::json::Json;
use service::proto::JobSubmission;
use service::router::{Router, RouterConfig, RouterShutdown};
use service::server::{Server, ServerConfig, ShutdownHandle};
use std::path::PathBuf;
use std::time::Duration;

const PAPER_EXAMPLE: &str =
    "# the paper's §2.2 example\n[{A},{D},{B,C}]\n[{A},{B,C},{D}]\n[{D},{A,C},{B}]\n";

/// Bind an in-process server on an ephemeral port and serve it on a
/// background thread.
fn start_server(config: ServerConfig) -> (Client, ShutdownHandle, String) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_handle().expect("shutdown handle");
    std::thread::spawn(move || server.serve());
    (Client::new(&addr), shutdown, addr)
}

fn start_router(workers: Vec<String>) -> (Client, RouterShutdown) {
    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig {
            workers,
            token: None,
        },
    )
    .expect("bind router");
    let addr = router.local_addr().expect("router addr").to_string();
    let shutdown = router.shutdown_handle().expect("router shutdown handle");
    std::thread::spawn(move || router.serve());
    (Client::new(&addr), shutdown)
}

/// A fresh scratch directory for one test's journal.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rawt-telemetry-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sum every series of a counter/gauge family across labels.
fn family_total(families: &[Family], name: &str) -> f64 {
    families
        .iter()
        .filter(|f| f.name == name)
        .flat_map(|f| &f.samples)
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

/// Total observation count of histogram family `name` across labels.
fn histogram_count(families: &[Family], name: &str) -> f64 {
    let suffix = format!("{name}_count");
    families
        .iter()
        .filter(|f| f.name == name)
        .flat_map(|f| &f.samples)
        .filter(|s| s.name == suffix)
        .map(|s| s.value)
        .sum()
}

fn scrape(client: &Client) -> Vec<Family> {
    parse_exposition(&client.metrics_text().expect("GET /metrics"))
}

/// A dataset big enough that BioConsert keeps a worker busy for a while.
fn big_dataset_text(n: usize, m: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = UniformSampler::new(n).sample_dataset(n, m, &mut rng);
    let mut text = String::new();
    for r in data.rankings() {
        text.push_str(&r.to_string());
        text.push('\n');
    }
    text
}

// ------------------------------------------------ histogram algebra

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket discipline: every observation lands in exactly one bucket
    /// whose upper bound covers it and whose predecessor's does not.
    #[test]
    fn histogram_buckets_cover_observations(micros in 0u64..1u64 << 45) {
        let h = Histogram::new();
        h.record_micros(micros);
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, 1);
        prop_assert_eq!(snap.sum_micros, micros);
        let hot: Vec<usize> = (0..HISTOGRAM_BUCKETS)
            .filter(|&i| snap.buckets[i] != 0)
            .collect();
        prop_assert_eq!(hot.len(), 1, "exactly one bucket per observation");
        let i = hot[0];
        let secs = micros as f64 / 1e6;
        if let Some(bound) = bucket_bound_secs(i) {
            prop_assert!(secs <= bound, "{secs}s must fit under bucket {i} ({bound}s)");
        }
        if i > 0 {
            let below = bucket_bound_secs(i - 1).expect("finite bound below");
            prop_assert!(secs > below, "{secs}s must not fit bucket {}", i - 1);
        }
    }

    /// Merging snapshots is element-wise addition, so it is associative
    /// and commutative — the property the router's fleet scrape and the
    /// dashboard's cross-worker aggregation both rely on.
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(0u64..1 << 40, 16),
        b in proptest::collection::vec(0u64..1 << 40, 16),
        c in proptest::collection::vec(0u64..1 << 40, 16),
    ) {
        let snap = |values: &[u64]| {
            let h = Histogram::new();
            for &v in values {
                h.record_micros(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right_tail = sb.clone();
        right_tail.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_tail);

        prop_assert_eq!(&left, &right, "(a+b)+c == a+(b+c)");

        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba, "a+b == b+a");

        let mut padded = left.clone();
        padded.merge(&HistogramSnapshot::default());
        prop_assert_eq!(&padded, &left, "empty snapshot is the identity");
    }
}

// ------------------------------------------------ exposition round-trip

/// `/metrics` parses as Prometheus text exposition, covers every tier
/// of the stack, and survives a parse → render → parse round-trip.
#[test]
fn metrics_exposition_parses_and_round_trips() {
    let dir = scratch_dir("roundtrip");
    let (client, shutdown, _) = start_server(ServerConfig {
        journal_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let job = client
        .submit(&JobSubmission {
            algo: Some("BioConsert".to_owned()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("submit");
    client.wait(job.id).expect("wait");

    let text = client.metrics_text().expect("GET /metrics");
    let families = parse_exposition(&text);
    assert!(!families.is_empty(), "exposition must parse into families");

    // One family per tier proves the whole stack reports to one registry:
    // kernel, scheduler, session/server, journal, HTTP front.
    for name in [
        "rawt_solve_seconds",          // kernel
        "rawt_matrix_builds_total",    // kernel / cache
        "rawt_queue_depth",            // scheduler
        "rawt_jobs_finished_total",    // engine lifecycle
        "rawt_jobs_accepted_total",    // server
        "rawt_journal_append_seconds", // journal
        "rawt_http_requests_total",    // HTTP front
    ] {
        assert!(
            families.iter().any(|f| f.name == name),
            "family {name} missing from exposition:\n{text}"
        );
    }
    assert_eq!(family_total(&families, "rawt_jobs_finished_total"), 1.0);
    assert!(histogram_count(&families, "rawt_journal_append_seconds") >= 1.0);

    // Histogram families expand to cumulative buckets ending at +Inf,
    // and _count equals the +Inf bucket.
    let solve = families
        .iter()
        .find(|f| f.name == "rawt_solve_seconds")
        .expect("solve histogram");
    assert_eq!(solve.kind, MetricKind::Histogram);
    let mut last = -1.0;
    for sample in solve.samples.iter().filter(|s| s.name.ends_with("_bucket")) {
        assert!(
            sample.value >= last,
            "bucket counts must be cumulative in {solve:?}"
        );
        last = sample.value;
    }
    let inf = solve
        .samples
        .iter()
        .filter(|s| s.label("le") == Some("+Inf"))
        .map(|s| s.value)
        .sum::<f64>();
    let count = solve
        .samples
        .iter()
        .filter(|s| s.name.ends_with("_count"))
        .map(|s| s.value)
        .sum::<f64>();
    assert_eq!(inf, count, "+Inf bucket must equal _count");

    // Round-trip: render the parsed families and parse again.
    let rendered = render_families(&families);
    assert_eq!(
        parse_exposition(&rendered),
        families,
        "parse(render(parse(text))) must be a fixed point"
    );

    shutdown.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------ phase breakdowns

/// The phase breakdown accounts for the job end to end: `solve` is the
/// reported kernel wall clock, and the phases sum to the breakdown's
/// own total — locally and through the wire JSON.
#[test]
fn phase_breakdown_sums_to_elapsed() {
    let mut universe = Universe::new();
    let raw = parse_dataset_lines(PAPER_EXAMPLE, &mut universe).expect("parse");
    let norm = Normalization::Unification.apply(&raw).expect("normalize");
    let report = Engine::new()
        .run(&AggregationRequest::new(norm.dataset.clone(), AlgoSpec::BioConsert).with_seed(7));

    assert_eq!(
        report.phases.solve, report.elapsed,
        "solve phase is the kernel wall clock by construction"
    );
    assert!(!report.phases.matrix_cached, "first run builds the matrix");
    let sum = report.phases.queue_wait
        + report.phases.matrix_build
        + report.phases.solve
        + report.phases.serialize;
    assert_eq!(sum, report.phases.total(), "total() is the phase sum");

    // Over the wire: the JSON phases object carries the same invariant.
    let (client, shutdown, _) = start_server(ServerConfig::default());
    let job = client
        .submit(&JobSubmission {
            algo: Some("BioConsert".to_owned()),
            seed: 7,
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("submit");
    let status = client.wait(job.id).expect("wait");
    let wire = status.get("report").expect("report");
    let phases = wire.get("phases").expect("phases in wire report");
    let field = |key: &str| {
        phases
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("phase field {key} in {phases}"))
    };
    let elapsed = wire
        .get("elapsed_secs")
        .and_then(Json::as_f64)
        .expect("elapsed_secs");
    let solve = field("solve_secs");
    assert!(
        (solve - elapsed).abs() <= 2e-6,
        "wire solve phase ({solve}) must equal elapsed ({elapsed}) \
         within serialization rounding"
    );
    for key in ["queue_wait_secs", "matrix_build_secs", "serialize_secs"] {
        assert!(field(key) >= 0.0, "{key} must be non-negative");
    }
    // A journaled-then-served report measures serialization once.
    assert!(field("serialize_secs") >= 0.0);
    shutdown.shutdown();
}

// ------------------------------------------------ router fleet scrape

/// The router's `/metrics` is the whole fleet: every worker-sourced
/// series gains a `worker="ADDR"` label, and the router's own proxy
/// metrics ride alongside.
#[test]
fn router_metrics_re_namespace_worker_series() {
    let worker = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind worker");
    let worker_addr = worker.local_addr().expect("worker addr").to_string();
    let worker_shutdown = worker.shutdown_handle().expect("worker shutdown");
    std::thread::spawn(move || worker.serve());

    let (client, router_shutdown) = start_router(vec![worker_addr.clone()]);
    let job = client
        .submit(&JobSubmission {
            algo: Some("Borda".to_owned()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("submit through router");
    client.wait(job.id).expect("wait through router");

    let families = scrape(&client);

    // Worker series are re-namespaced: the solve histogram only exists
    // on workers, so every one of its samples must carry the label.
    let solve = families
        .iter()
        .find(|f| f.name == "rawt_solve_seconds")
        .expect("worker solve histogram visible through the router");
    assert!(!solve.samples.is_empty());
    for sample in &solve.samples {
        assert_eq!(
            sample.label("worker"),
            Some(worker_addr.as_str()),
            "worker series must be tagged with the worker address: {sample:?}"
        );
    }

    // The router's own families are present, already worker-labelled by
    // their target.
    let proxy = families
        .iter()
        .find(|f| f.name == "rawt_router_proxy_seconds")
        .expect("router proxy histogram");
    assert!(proxy
        .samples
        .iter()
        .all(|s| s.label("worker") == Some(worker_addr.as_str())));
    assert!(
        family_total(&families, "rawt_jobs_finished_total") >= 1.0,
        "fleet scrape must include the worker's job counters"
    );

    router_shutdown.shutdown();
    worker_shutdown.shutdown();
}

// ------------------------------------------------ heartbeat knob

/// `ServerConfig::heartbeat_secs` drives the event-stream keepalive: a
/// queued job's quiet stream emits a heartbeat within a couple of the
/// configured 1-second periods (the former hard-wired constant was 15s,
/// far beyond this test's deadline).
#[test]
fn heartbeat_interval_is_configurable() {
    assert_eq!(
        ServerConfig::default().heartbeat_secs,
        15,
        "default cadence stays at the historical 15s"
    );
    let (client, shutdown, _) = start_server(ServerConfig {
        max_jobs: 1,
        queue_capacity: 4,
        heartbeat_secs: 1,
        ..ServerConfig::default()
    });
    // Occupy the single worker so the next job sits queued (and silent).
    let running = client
        .submit(&JobSubmission {
            algo: Some("BioConsert".to_owned()),
            budget: Some(Duration::from_secs(20)),
            ..JobSubmission::new(big_dataset_text(500, 30, 11))
        })
        .expect("submit the long job");
    let queued = client
        .submit(&JobSubmission {
            algo: Some("Exact".to_owned()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("submit the queued job");

    // The queued job's stream is silent until it starts; a 1s cadence
    // must pad it with a heartbeat long before the 20s budget runs out.
    let mut saw_heartbeat = false;
    for event in client.events(queued.id).expect("event stream") {
        let event = event.expect("event line");
        if event.get("event").and_then(Json::as_str) == Some("heartbeat") {
            saw_heartbeat = true;
            break;
        }
    }
    assert!(
        saw_heartbeat,
        "a 1s cadence must heartbeat the quiet stream before any real event"
    );

    client.cancel(running.id).expect("cancel the long job");
    client.wait(running.id).expect("long job settles");
    client.wait(queued.id).expect("queued job settles");
    shutdown.shutdown();
}

// ------------------------------------------------ restart semantics

/// Telemetry is process-lifetime state: a restart over the same journal
/// re-serves the finished report but starts a fresh registry — the
/// recovered job is *not* re-counted as started or finished, so fleet
/// dashboards never double-count work across crashes.
#[test]
fn journal_recovery_does_not_double_count_metrics() {
    let dir = scratch_dir("recovery");
    let config = || ServerConfig {
        journal_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    let (client, shutdown, _) = start_server(config());
    let job = client
        .submit(&JobSubmission {
            algo: Some("BioConsert".to_owned()),
            seed: 3,
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("submit");
    let finished = client.wait(job.id).expect("wait");
    let first_score = finished
        .get("report")
        .and_then(|r| r.get("score"))
        .and_then(Json::as_u64)
        .expect("score before restart");
    let families = scrape(&client);
    assert_eq!(family_total(&families, "rawt_jobs_started_total"), 1.0);
    assert_eq!(family_total(&families, "rawt_jobs_finished_total"), 1.0);
    shutdown.shutdown();
    // Let the listener actually release the port before restarting.
    std::thread::sleep(Duration::from_millis(50));

    let (client, shutdown, _) = start_server(config());
    let status = client.status(job.id).expect("recovered job is served");
    assert_eq!(
        status
            .get("report")
            .and_then(|r| r.get("score"))
            .and_then(Json::as_u64),
        Some(first_score),
        "restart must re-serve the journaled report"
    );
    let families = scrape(&client);
    assert_eq!(
        family_total(&families, "rawt_jobs_started_total"),
        0.0,
        "a recovered finished job must not re-run"
    );
    assert_eq!(
        family_total(&families, "rawt_jobs_finished_total"),
        0.0,
        "a recovered finished job must not re-count as finished"
    );
    assert!(
        histogram_count(&families, "rawt_journal_replay_seconds") >= 1.0,
        "the replay itself is what the fresh registry records"
    );
    shutdown.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
