//! End-to-end tests of the fingerprint-routing front tier (DESIGN.md
//! §14.2): a batch submitted through the router matches the in-process
//! [`Engine::run_batch`], dataset sessions stay sticky to one worker
//! across PATCHes, inline submissions fail over around a dead worker,
//! sticky state on a dead worker answers 503 + `Retry-After`, a fleet
//! with no reachable worker answers 503, idempotent resubmission through
//! the router reuses router-side ids, and the bearer token guards the
//! router exactly as it guards a worker.

use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::parse::parse_dataset_lines;
use rank_aggregation_with_ties::rank_core::Universe;
use service::client::{Client, ClientError};
use service::json::Json;
use service::proto::{BatchSubmission, JobSubmission};
use service::router::{Router, RouterConfig, RouterShutdown};
use service::server::{Server, ServerConfig, ShutdownHandle};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

const PAPER_EXAMPLE: &str =
    "# the paper's §2.2 example\n[{A},{D},{B,C}]\n[{A},{B,C},{D}]\n[{D},{A,C},{B}]\n";

const PANEL: [&str; 4] = ["BioConsert", "Exact", "Borda", "KwikSort"];

fn start_worker(config: ServerConfig) -> (String, ShutdownHandle) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind worker");
    let addr = server.local_addr().expect("worker addr").to_string();
    let shutdown = server.shutdown_handle().expect("worker shutdown handle");
    std::thread::spawn(move || server.serve());
    (addr, shutdown)
}

fn start_router(workers: Vec<String>, token: Option<String>) -> (Client, RouterShutdown, String) {
    let router = Router::bind("127.0.0.1:0", RouterConfig { workers, token }).expect("bind router");
    let addr = router.local_addr().expect("router addr").to_string();
    let shutdown = router.shutdown_handle().expect("router shutdown handle");
    std::thread::spawn(move || router.serve());
    (Client::new(&addr), shutdown, addr)
}

/// An address that was briefly bound and is now guaranteed dead —
/// connecting to it gets an immediate refusal, the same signal the
/// router sees from a SIGKILLed worker process.
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind throwaway");
    listener.local_addr().expect("throwaway addr").to_string()
}

/// Shut a worker down and wait until its port actually refuses
/// connections (the accept loop may drain one last wake-up connect).
fn kill_worker(addr: &str, shutdown: &ShutdownHandle) {
    shutdown.shutdown();
    for _ in 0..200 {
        if TcpStream::connect(addr).is_err() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("worker {addr} still accepting after shutdown");
}

fn panel_submission() -> BatchSubmission {
    BatchSubmission {
        seed: 7,
        ..BatchSubmission::new(PAPER_EXAMPLE, PANEL.iter().map(|s| s.to_string()).collect())
    }
}

/// The acceptance bar: the router is transparent — a batch through it
/// matches a local [`Engine::run_batch`] spec for spec (same field set
/// as the direct-to-worker parity test in `tests/batch_api.rs`), and
/// the router-minted sub-job ids resolve through `GET /v1/jobs/{id}`.
#[test]
fn batch_through_router_matches_local_run_batch() {
    let (worker_a, down_a) = start_worker(ServerConfig::default());
    let (worker_b, down_b) = start_worker(ServerConfig::default());
    let (client, down_router, _) = start_router(vec![worker_a, worker_b], None);

    let mut universe = Universe::new();
    let raw = parse_dataset_lines(PAPER_EXAMPLE, &mut universe).expect("parse");
    let norm = Normalization::Unification.apply(&raw).expect("normalize");
    let requests: Vec<AggregationRequest> = PANEL
        .iter()
        .map(|spec| {
            AggregationRequest::new(norm.dataset.clone(), AlgoSpec::parse(spec).expect("spec"))
                .with_seed(7)
        })
        .collect();
    let local = Engine::new().run_batch(&requests);

    let batch = client
        .submit_batch(&panel_submission())
        .expect("submit via router");
    assert_eq!(batch.jobs.len(), PANEL.len());
    let status = client.wait_batch(batch.id).expect("wait via router");
    let jobs = status.get("jobs").and_then(Json::as_array).expect("jobs");
    assert_eq!(jobs.len(), PANEL.len());

    for ((job, local_report), spec) in jobs.iter().zip(&local).zip(PANEL) {
        assert_eq!(
            job.get("spec").and_then(Json::as_str),
            Some(local_report.spec.to_string().as_str()),
            "{spec}: sub-jobs must come back in request order"
        );
        let report = job.get("report").expect("report present");
        assert!(!report.is_null(), "{spec}: report must be final");
        assert_eq!(
            report.get("score").and_then(Json::as_u64),
            Some(local_report.score),
            "{spec}: scores must match through the router"
        );
        assert_eq!(
            report.get("outcome").and_then(Json::as_str),
            Some(local_report.outcome.to_string().as_str()),
            "{spec}: outcomes must match through the router"
        );
        let remote_ranking = report.get("ranking").expect("ranking").to_string();
        let local_ranking =
            service::proto::ranking_json(&norm.denormalize(&local_report.ranking), &universe);
        assert_eq!(
            Json::parse(&remote_ranking).expect("remote ranking"),
            Json::parse(&local_ranking).expect("local ranking"),
            "{spec}: rankings must match through the router"
        );
    }

    // Router-minted sub-job ids are real job ids on the router.
    for sub in &batch.jobs {
        let doc = client.status(sub.id).expect("sub-job status via router");
        assert_eq!(
            doc.get("spec").and_then(Json::as_str),
            Some(sub.spec.as_str()),
            "sub-job {} must resolve through /v1/jobs/",
            sub.id
        );
    }
    down_router.shutdown();
    down_a.shutdown();
    down_b.shutdown();
}

/// The sticky-session acceptance criterion: a dataset created through
/// the router is PATCHed through the router repeatedly and every request
/// lands on the same worker — versions increment (a second worker would
/// 404 the session), jobs by `dataset_id` run against the patched state,
/// and exactly one worker's healthz holds the session.
#[test]
fn dataset_session_sticks_to_one_worker() {
    let fleet: Vec<(String, ShutdownHandle)> = (0..3)
        .map(|_| start_worker(ServerConfig::default()))
        .collect();
    let addrs: Vec<String> = fleet.iter().map(|(addr, _)| addr.clone()).collect();
    let (client, down_router, _) = start_router(addrs.clone(), None);

    let created = client
        .create_dataset("live", PAPER_EXAMPLE)
        .expect("PUT via router");
    assert_eq!(created.get("version").and_then(Json::as_u64), Some(1));
    for expected_version in 2..=4u64 {
        let patched = client
            .patch_dataset(
                "live",
                "{\"ops\":[{\"op\":\"add\",\"ranking\":\"[{A},{B},{C},{D}]\"}]}",
            )
            .expect("PATCH via router");
        assert_eq!(
            patched.get("version").and_then(Json::as_u64),
            Some(expected_version),
            "every PATCH must land on the worker holding the session"
        );
    }
    let job = client
        .submit(&JobSubmission {
            algo: Some("Exact".into()),
            ..JobSubmission::for_dataset("live")
        })
        .expect("job on the session via router");
    let done = client.wait(job.id).expect("wait via router");
    assert!(
        done.get("report").is_some_and(|r| !r.is_null()),
        "session job must finish"
    );

    let holders: Vec<&String> = addrs
        .iter()
        .filter(|addr| {
            Client::new(addr)
                .healthz()
                .expect("direct worker healthz")
                .get("datasets")
                .and_then(Json::as_u64)
                == Some(1)
        })
        .collect();
    assert_eq!(holders.len(), 1, "exactly one worker holds the session");

    down_router.shutdown();
    for (_, down) in fleet {
        down.shutdown();
    }
}

/// Killing the worker that holds a session: the router refuses to fail
/// over (the patched matrix is not portable) and answers 503 with a
/// `Retry-After`, for both the session route and jobs naming it.
#[test]
fn sticky_session_on_dead_worker_gets_503_with_retry_after() {
    let (worker_a, down_a) = start_worker(ServerConfig::default());
    let (worker_b, down_b) = start_worker(ServerConfig::default());
    let (client, down_router, _) = start_router(vec![worker_a.clone(), worker_b.clone()], None);

    client
        .create_dataset("doomed", PAPER_EXAMPLE)
        .expect("PUT via router");
    let a_holds = Client::new(&worker_a)
        .healthz()
        .expect("worker healthz")
        .get("datasets")
        .and_then(Json::as_u64)
        == Some(1);
    if a_holds {
        kill_worker(&worker_a, &down_a);
    } else {
        kill_worker(&worker_b, &down_b);
    }

    match client.patch_dataset("doomed", "{\"ops\":[{\"op\":\"remove\",\"index\":0}]}") {
        Err(ClientError::Status {
            status: 503,
            retry_after_secs,
            ..
        }) => {
            assert_eq!(retry_after_secs, Some(2), "503 must carry Retry-After");
        }
        other => panic!("PATCH to a dead session worker must 503, got {other:?}"),
    }
    match client.submit(&JobSubmission::for_dataset("doomed")) {
        Err(ClientError::Status {
            status: 503,
            retry_after_secs,
            ..
        }) => {
            assert!(retry_after_secs.is_some());
        }
        other => panic!("job on a dead session worker must 503, got {other:?}"),
    }

    // The fleet is degraded, not down — healthz says so.
    let health = client.healthz().expect("router healthz");
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded")
    );
    assert_eq!(health.get("alive").and_then(Json::as_u64), Some(1));

    down_router.shutdown();
    if a_holds {
        down_b.shutdown();
    } else {
        down_a.shutdown();
    }
}

/// A dead worker mid-fleet: inline submissions (no session pin) slide
/// past it through the rendezvous order, finish on the survivor, and a
/// keyed resubmission through the router stays safe — same answer, no
/// duplicate work.
#[test]
fn inline_jobs_fail_over_when_a_worker_dies() {
    let (worker_a, down_a) = start_worker(ServerConfig::default());
    let (worker_b, down_b) = start_worker(ServerConfig::default());
    let (client, down_router, _) = start_router(vec![worker_a.clone(), worker_b], None);
    kill_worker(&worker_a, &down_a);

    // Varied comment lines vary the routing fingerprint, so some of
    // these keys prefer the dead worker; every one must still land.
    for i in 0..6 {
        let submission = JobSubmission {
            algo: Some("Exact".into()),
            idempotency_key: Some(format!("failover-{i}")),
            ..JobSubmission::new(format!("# variant {i}\n{PAPER_EXAMPLE}"))
        };
        let first = client
            .submit(&submission)
            .expect("submit around dead worker");
        let done = client.wait(first.id).expect("wait via router");
        assert_eq!(
            done.get("report")
                .and_then(|r| r.get("score"))
                .and_then(Json::as_u64),
            Some(5),
            "job {i} must finish on the survivor with the §2.2 optimum"
        );
        // Retrying the same submission through the router reattaches to
        // the finished job instead of re-running it.
        let second = client.submit(&submission).expect("idempotent resubmit");
        assert!(
            second.deduplicated,
            "resubmit with the same key must deduplicate"
        );
        assert_eq!(
            second.id, first.id,
            "router id must be stable across the retry"
        );
    }
    down_router.shutdown();
    down_b.shutdown();
}

/// Every worker down: submissions answer 503 with `Retry-After`, and the
/// router's healthz stays reachable reporting `"down"` (the router
/// itself is alive — that is the point of the aggregate probe).
#[test]
fn all_workers_down_is_503_and_healthz_reports_it() {
    let (client, down_router, _) = start_router(vec![dead_addr(), dead_addr()], None);

    match client.submit(&JobSubmission::new(PAPER_EXAMPLE)) {
        Err(ClientError::Status {
            status: 503,
            retry_after_secs,
            ..
        }) => {
            assert!(retry_after_secs.is_some(), "503 must carry Retry-After");
        }
        other => panic!("submit with no workers must 503, got {other:?}"),
    }
    match client.submit_batch(&panel_submission()) {
        Err(ClientError::Status { status: 503, .. }) => {}
        other => panic!("batch with no workers must 503, got {other:?}"),
    }

    let health = client.healthz().expect("router healthz stays up");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("down"));
    assert_eq!(health.get("alive").and_then(Json::as_u64), Some(0));
    assert_eq!(health.get("total").and_then(Json::as_u64), Some(2));
    down_router.shutdown();
}

/// The bearer token guards the router exactly as it guards a worker:
/// `GET /healthz` stays open for probes, everything else 401s without
/// the token, and an authenticated client works end to end — the router
/// forwarding the token to token-guarded workers.
#[test]
fn router_token_guards_everything_but_healthz() {
    let token_config = || ServerConfig {
        token: Some("fleet-secret".into()),
        ..ServerConfig::default()
    };
    let (worker_a, down_a) = start_worker(token_config());
    let (worker_b, down_b) = start_worker(token_config());
    let (bare, down_router, router_addr) =
        start_router(vec![worker_a, worker_b], Some("fleet-secret".into()));

    let health = bare.healthz().expect("healthz stays open");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert!(
        matches!(
            bare.submit(&JobSubmission::new(PAPER_EXAMPLE)),
            Err(ClientError::Status { status: 401, .. })
        ),
        "missing token must 401 at the router"
    );

    let authed = Client::with_token(&router_addr, "fleet-secret");
    let job = authed
        .submit(&JobSubmission {
            algo: Some("Exact".into()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("authenticated submit via router");
    let done = authed.wait(job.id).expect("authenticated wait via router");
    assert_eq!(
        done.get("report")
            .and_then(|r| r.get("score"))
            .and_then(Json::as_u64),
        Some(5)
    );
    down_router.shutdown();
    down_a.shutdown();
    down_b.shutdown();
}
