//! Differential conformance suite for the two pairwise-cost lanes
//! (DESIGN.md §16): the matrix-free lane must be **bit-identical** to the
//! dense lane — same consensus ranking, same exact integer score — for
//! every algorithm that supports it, and the chunked (SIMD-style) row
//! scans must equal their scalar twins on every input, including lengths
//! not divisible by the unroll width and fully tied rows.

use proptest::prelude::*;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::distance::{
    generalized_kendall_tau_chunked, pair_counts,
};
use rank_aggregation_with_ties::rank_core::pairs::LANES;
use rank_aggregation_with_ties::rank_core::positional::{CostProvider, PositionalCosts};

fn ranking_strategy(n: usize) -> impl Strategy<Value = Ranking> {
    prop::collection::vec(0..n as u32, n).prop_map(|idx| {
        let mut used: Vec<u32> = idx.clone();
        used.sort_unstable();
        used.dedup();
        let remap: Vec<u32> = idx
            .iter()
            .map(|v| used.iter().position(|u| u == v).unwrap() as u32)
            .collect();
        Ranking::from_bucket_indices(&remap).expect("compacted")
    })
}

/// Random datasets with ties; `n` deliberately straddles the unroll width
/// [`LANES`] (= 8) so both the chunked body and the scalar tail of every
/// kernel are exercised, including n ≡ 0 (mod 8) and n < 8.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..=19, 2usize..=6).prop_flat_map(|(n, m)| {
        prop::collection::vec(ranking_strategy(n), m)
            .prop_map(|rs| Dataset::new(rs).expect("dense"))
    })
}

/// One ranking per element count where everything is tied in one bucket.
fn all_tied(n: usize) -> Ranking {
    Ranking::from_bucket_indices(&vec![0u32; n]).expect("single bucket")
}

/// The specs the matrix-free lane supports (`AlgoSpec::supports_matrix_free`).
fn matrix_free_specs() -> Vec<AlgoSpec> {
    vec![
        AlgoSpec::Borda,
        AlgoSpec::Copeland,
        AlgoSpec::MedRank(0.5),
        AlgoSpec::MedRank(0.8),
        AlgoSpec::Mc4,
    ]
}

/// Run one spec on both lanes with fresh engines and return the reports
/// (dense, matrix-free), asserting the lane bookkeeping on the way.
fn run_both_lanes(data: &Dataset, spec: AlgoSpec, seed: u64) -> (ConsensusReport, ConsensusReport) {
    let dense_engine = Engine::new();
    let dense = dense_engine.run(
        &AggregationRequest::new(data.clone(), spec.clone())
            .with_seed(seed)
            .with_lane(LanePolicy::Dense),
    );
    assert_eq!(dense.lane, KernelLane::Dense);
    assert_eq!(dense_engine.cache().builds(), 1);

    let free_engine = Engine::new();
    let free = free_engine.run(
        &AggregationRequest::new(data.clone(), spec)
            .with_seed(seed)
            .with_lane(LanePolicy::MatrixFree),
    );
    assert_eq!(free.lane, KernelLane::MatrixFree);
    assert_eq!(
        free_engine.cache().builds(),
        0,
        "the matrix-free lane must never build a cost matrix"
    );
    (dense, free)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tentpole contract: for every supporting algorithm, the matrix-free
    /// lane returns the same ranking and the same exact score as the
    /// dense lane — bit-identical, not approximately equal.
    #[test]
    fn matrix_free_lane_is_bit_identical_to_dense(
        data in dataset_strategy(),
        seed in 0u64..100,
    ) {
        for spec in matrix_free_specs() {
            let (dense, free) = run_both_lanes(&data, spec.clone(), seed);
            prop_assert_eq!(&dense.ranking, &free.ranking, "{} seed {}", spec, seed);
            prop_assert_eq!(dense.score, free.score, "{} seed {}", spec, seed);
            prop_assert_eq!(dense.outcome, free.outcome, "{} seed {}", spec, seed);
        }
    }

    /// The on-demand positional provider recomputes every dense row
    /// exactly: same interleaved layout, same integers, zero resident
    /// bytes.
    #[test]
    fn positional_rows_equal_dense_matrix_rows(data in dataset_strategy()) {
        let dense = PairTable::build(&data);
        let free = PositionalCosts::new(&data);
        let mut buf = vec![0u32; 2 * data.n()];
        for a in 0..data.n() {
            let e = Element(a as u32);
            prop_assert_eq!(free.row_into(e, &mut buf), dense.row(e), "row {}", a);
        }
        prop_assert_eq!(free.n(), data.n());
        prop_assert_eq!(free.m(), data.m() as u32);
        prop_assert_eq!(free.bytes(), 0);
    }

    /// The chunked 8-wide score scan equals the scalar loop on every
    /// candidate — the unrolled lanes are pure integer math, so this is
    /// exact equality, not tolerance.
    #[test]
    fn chunked_score_equals_scalar_score(
        (data, cand) in dataset_strategy().prop_flat_map(|d| {
            let n = d.n();
            (Just(d), ranking_strategy(n))
        })
    ) {
        let pairs = PairTable::build(&data);
        prop_assert_eq!(pairs.score(&cand), pairs.score_scalar(&cand));
        prop_assert_eq!(pairs.score(&cand), kemeny_score(&cand, &data));
    }

    /// Same for the chunked lower-bound scan.
    #[test]
    fn chunked_lower_bound_equals_scalar(data in dataset_strategy()) {
        let pairs = PairTable::build(&data);
        prop_assert_eq!(pairs.lower_bound(), pairs.lower_bound_scalar());
    }

    /// The chunked Kendall scan agrees with the pair-count path on
    /// complete rankings (its dispatch precondition).
    #[test]
    fn chunked_kendall_equals_pair_counts(
        (r, s) in (2usize..=19).prop_flat_map(|n| {
            (ranking_strategy(n), ranking_strategy(n))
        })
    ) {
        let chunked = generalized_kendall_tau_chunked(&r, &s);
        prop_assert_eq!(chunked, pair_counts(&r, &s).generalized());
        // …and the public entry point dispatches consistently.
        prop_assert_eq!(chunked, generalized_kendall_tau(&r, &s));
    }
}

// ------------------------------------------------- deterministic edges

#[test]
fn tail_lengths_around_the_unroll_width_are_exact() {
    // n = LANES - 1, LANES, LANES + 1, 2·LANES + 3: empty chunk body,
    // exact multiple (empty tail), and ragged tails on both sides.
    for n in [LANES - 1, LANES, LANES + 1, 2 * LANES + 3] {
        let rankings: Vec<Ranking> = (0..3u32)
            .map(|k| {
                let idx: Vec<u32> = (0..n as u32)
                    .map(|e| (e * (k + 3) + k) % n as u32)
                    .collect();
                let mut used = idx.clone();
                used.sort_unstable();
                used.dedup();
                let remap: Vec<u32> = idx
                    .iter()
                    .map(|v| used.iter().position(|u| u == v).unwrap() as u32)
                    .collect();
                Ranking::from_bucket_indices(&remap).unwrap()
            })
            .collect();
        let data = Dataset::new(rankings).unwrap();
        let pairs = PairTable::build(&data);
        assert_eq!(pairs.lower_bound(), pairs.lower_bound_scalar(), "n={n}");
        for r in data.rankings() {
            assert_eq!(pairs.score(r), pairs.score_scalar(r), "n={n}");
        }
    }
}

#[test]
fn all_tied_rows_agree_across_lanes_and_scans() {
    // Every ranking one bucket: all pairwise decisions are ties, the
    // degenerate corner where a sign error between the lanes' tie-cost
    // conventions would show up first.
    for n in [5usize, 8, 13] {
        let data = Dataset::new(vec![all_tied(n), all_tied(n), all_tied(n)]).unwrap();
        let pairs = PairTable::build(&data);
        let free = PositionalCosts::new(&data);
        let mut buf = vec![0u32; 2 * n];
        for a in 0..n {
            let e = Element(a as u32);
            assert_eq!(free.row_into(e, &mut buf), pairs.row(e), "n={n} row {a}");
        }
        let tied = all_tied(n);
        assert_eq!(pairs.score(&tied), pairs.score_scalar(&tied), "n={n}");
        assert_eq!(pairs.score(&tied), 0, "consensus of all-tied inputs");
        assert_eq!(pairs.lower_bound(), pairs.lower_bound_scalar(), "n={n}");
        assert_eq!(generalized_kendall_tau_chunked(&tied, &tied), 0);
        for spec in matrix_free_specs() {
            let (dense, free) = run_both_lanes(&data, spec.clone(), 7);
            assert_eq!(dense.ranking, free.ranking, "{spec} n={n}");
            assert_eq!(dense.score, free.score, "{spec} n={n}");
        }
    }
}

#[test]
fn five_thousand_elements_run_matrix_free_without_any_matrix_build() {
    // The acceptance-scale panel: n = 5000 on the matrix-free lane. A
    // dense build here would be 200 MB and O(m·n²) work; the lane
    // contract is that the MatrixCache build counter stays at zero.
    let n: usize = 5000;
    let rankings: Vec<Ranking> = (0..3u32)
        .map(|k| {
            // Affine permutation of 0..n (gcd(step, n) = 1), pairs of
            // adjacent images tied into buckets of two.
            let step = [7u64, 11, 13][k as usize];
            let idx: Vec<u32> = (0..n as u64)
                .map(|e| (((e * step + k as u64) % n as u64) / 2) as u32)
                .collect();
            Ranking::from_bucket_indices(&idx).unwrap()
        })
        .collect();
    let data = Dataset::new(rankings).unwrap();
    let engine = Engine::new();
    let requests = AggregationRequest::batch(data)
        .spec(AlgoSpec::Borda)
        .spec(AlgoSpec::Copeland)
        .spec(AlgoSpec::MedRank(0.5))
        .seed(11)
        .policy(ExecPolicy::default().with_lane(LanePolicy::MatrixFree))
        .build();
    let reports = engine.run_batch(&requests);
    assert_eq!(reports.len(), 3);
    for report in &reports {
        assert_eq!(report.lane, KernelLane::MatrixFree, "{}", report.spec);
        assert!(report.ranking.n_elements() == n, "{}", report.spec);
        assert!(report.outcome.completed(), "{}", report.spec);
    }
    assert_eq!(
        engine.cache().builds(),
        0,
        "n=5000 matrix-free panel must never touch the dense cache"
    );
}

#[test]
fn unsupported_specs_fall_back_to_dense_even_when_asked() {
    // BioConsert's inner loop needs random access to all n² costs; an
    // explicit MatrixFree request on it resolves to the dense lane rather
    // than running a kernel that would thrash O(m·n) row recomputation.
    let data = Dataset::new(vec![all_tied(6), all_tied(6)]).unwrap();
    let request =
        AggregationRequest::new(data, AlgoSpec::BioConsert).with_lane(LanePolicy::MatrixFree);
    assert_eq!(request.resolved_lane(), KernelLane::Dense);
    let engine = Engine::new();
    let report = engine.run(&request);
    assert_eq!(report.lane, KernelLane::Dense);
    assert_eq!(engine.cache().builds(), 1);
}
