//! Properties of the scoring layer and the Min-variant wrapper.

use proptest::prelude::*;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::algorithms::kwiksort::KwikSort;
use rank_aggregation_with_ties::rank_core::algorithms::BestOf;
use rank_aggregation_with_ties::rank_core::score::classical_kemeny_score;

fn ranking_strategy(n: usize) -> impl Strategy<Value = Ranking> {
    prop::collection::vec(0..n as u32, n).prop_map(|idx| {
        let mut used: Vec<u32> = idx.clone();
        used.sort_unstable();
        used.dedup();
        let remap: Vec<u32> = idx
            .iter()
            .map(|v| used.iter().position(|u| u == v).unwrap() as u32)
            .collect();
        Ranking::from_bucket_indices(&remap).expect("compacted")
    })
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..=14, 2usize..=6).prop_flat_map(|(n, m)| {
        prop::collection::vec(ranking_strategy(n), m)
            .prop_map(|rs| Dataset::new(rs).expect("dense"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pair_table_score_equals_direct_kemeny(
        (data, cand) in dataset_strategy().prop_flat_map(|d| {
            let n = d.n();
            (Just(d), ranking_strategy(n))
        })
    ) {
        let pairs = PairTable::build(&data);
        prop_assert_eq!(pairs.score(&cand), kemeny_score(&cand, &data));
    }

    #[test]
    fn classical_score_never_exceeds_generalized(
        (data, cand) in dataset_strategy().prop_flat_map(|d| {
            let n = d.n();
            (Just(d), ranking_strategy(n))
        })
    ) {
        prop_assert!(classical_kemeny_score(&cand, &data) <= kemeny_score(&cand, &data));
    }

    #[test]
    fn pair_table_lower_bound_is_admissible(
        (data, cand) in dataset_strategy().prop_flat_map(|d| {
            let n = d.n();
            (Just(d), ranking_strategy(n))
        })
    ) {
        let pairs = PairTable::build(&data);
        prop_assert!(pairs.lower_bound() <= pairs.score(&cand),
                     "LB {} above an achievable score {}", pairs.lower_bound(),
                     pairs.score(&cand));
    }

    #[test]
    fn input_rankings_bound_each_other(data in dataset_strategy()) {
        // Σ over inputs of K(r_i) = Σ over unordered input pairs of
        // 2·G(r_i, r_j) — a consistency identity between the score and the
        // distance.
        let m = data.m();
        let direct: u64 = data.rankings().iter().map(|r| kemeny_score(r, &data)).sum();
        let mut pairwise = 0u64;
        for i in 0..m {
            for j in 0..m {
                if i != j {
                    pairwise += generalized_kendall_tau(data.ranking(i), data.ranking(j));
                }
            }
        }
        prop_assert_eq!(direct, pairwise);
    }

    #[test]
    fn best_of_dominates_single_run(data in dataset_strategy(), runs in 2usize..=8) {
        // The wrapper gives repeat r the worker-derived RNG stream r, so a
        // standalone run on worker stream 0 reproduces its first repeat —
        // and the best-of result can never be worse than that repeat.
        let mut worker0 = AlgoContext::seeded(5).worker(0);
        let single = KwikSort.run(&data, &mut worker0);
        let best = BestOf::new(Box::new(KwikSort), runs, "KwikSortMin")
            .run(&data, &mut AlgoContext::seeded(5));
        prop_assert!(kemeny_score(&best, &data) <= kemeny_score(&single, &data));
    }

    #[test]
    fn lanes_share_the_tie_cost_convention_on_fully_tied_inputs(
        (n, m, cand) in (2usize..=12, 2usize..=5).prop_flat_map(|(n, m)| {
            (Just(n), Just(m), ranking_strategy(n))
        })
    ) {
        // 100%-ties dataset: every input is one bucket, so every pairwise
        // decision costs `m` when the candidate orders it strictly and 0
        // when it ties it. Both scoring paths — the dense matrix row scan
        // and the matrix-free distance sum — must agree on that
        // convention exactly (score = m · #strict pairs of the candidate).
        let tied = Ranking::from_bucket_indices(&vec![0u32; n]).expect("one bucket");
        let data = Dataset::new(vec![tied; m]).expect("dense");
        let strict_pairs: u64 = {
            let sizes: Vec<u64> = (0..cand.n_buckets())
                .map(|b| cand.bucket(b).len() as u64)
                .collect();
            let total = n as u64 * (n as u64 - 1) / 2;
            total - sizes.iter().map(|s| s * (s - 1) / 2).sum::<u64>()
        };
        let expected = m as u64 * strict_pairs;
        let pairs = PairTable::build(&data);
        prop_assert_eq!(pairs.score(&cand), expected);
        prop_assert_eq!(kemeny_score(&cand, &data), expected);
        // The engine's two lanes inherit the same convention end to end.
        let dense = Engine::new().run(
            &AggregationRequest::new(data.clone(), AlgoSpec::Borda)
                .with_lane(LanePolicy::Dense),
        );
        let free = Engine::new().run(
            &AggregationRequest::new(data, AlgoSpec::Borda)
                .with_lane(LanePolicy::MatrixFree),
        );
        prop_assert_eq!(dense.score, free.score);
        prop_assert_eq!(dense.score, 0, "all-tied consensus is free");
    }

    #[test]
    fn gap_is_scale_free(score in 1u64..10_000, k in 1u64..5) {
        // gap(k·s, k·ref) == gap(s, ref).
        let reference = 100u64;
        let a = gap(score, reference);
        let b = gap(score * k, reference * k);
        prop_assert!((a - b).abs() < 1e-12);
    }
}
