//! Tiny-scale runs of the experimental harness asserting the paper's
//! *qualitative* findings — the same checks EXPERIMENTS.md records at
//! full scale.

use bench::{evaluate_dataset, GapAccumulator, Scale};
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::ragen::{MarkovGen, UniformSampler};

fn uniform_accumulator(n: usize, count: usize) -> GapAccumulator {
    let sampler = UniformSampler::new(n);
    let mut rng = rand::SeedableRng::seed_from_u64(7);
    let scale = Scale::quick();
    let mut acc = GapAccumulator::new();
    for i in 0..count {
        let data = sampler.sample_dataset(n, 5 + i % 4, &mut rng);
        acc.add(&evaluate_dataset(
            &data,
            &paper_panel(5),
            true,
            &scale,
            i as u64,
        ));
    }
    acc
}

#[test]
fn table5_shape_bioconsert_wins() {
    // Paper Table 5: BioConsert rank #1 with ~0 gap; MEDRank and
    // Pick-a-Perm at the bottom; KwikSortMin between.
    let acc = uniform_accumulator(10, 8);
    assert_eq!(acc.proved, acc.total, "n=10 must always prove optimality");
    let s = acc.stats();
    let gap = |name: &str| s[name].mean_gap();
    assert!(
        gap("BioConsert") <= 0.01,
        "BioConsert gap {}",
        gap("BioConsert")
    );
    assert!(gap("BioConsert") <= gap("BordaCount"));
    assert!(gap("KwikSortMin") <= gap("KwikSort") + 1e-12);
    assert!(gap("RepeatChoiceMin") <= gap("RepeatChoice") + 1e-12);
    assert!(gap("BioConsert") <= gap("MEDRank(0.5)"));
    // §7.1.1 fourth point: raising the threshold does not help MEDRank.
    assert!(gap("MEDRank(0.5)") <= gap("MEDRank(0.7)") + 0.05);
}

#[test]
fn exact_always_first_and_zero_gap() {
    let acc = uniform_accumulator(8, 6);
    let exact = &acc.stats()["ExactAlgorithm"];
    assert_eq!(exact.mean_gap(), 0.0);
    assert_eq!(exact.pct_first(), 100.0);
    assert_eq!(exact.pct_zero(), 100.0);
}

#[test]
fn figure4_shape_similarity_helps_kwiksort() {
    // Paper Figure 4: KwikSort's gap shrinks dramatically on similar
    // datasets (×24 between t = 50 000 and t = 50).
    let scale = Scale::quick();
    let mut rng = rand::SeedableRng::seed_from_u64(3);
    let gap_at = |t: usize, rng: &mut rand::rngs::StdRng| {
        let mut acc = GapAccumulator::new();
        for i in 0..4 {
            let data = MarkovGen::identity_seeded(12, t).dataset(7, rng);
            acc.add(&evaluate_dataset(&data, &paper_panel(5), true, &scale, i));
        }
        acc.stats()["KwikSort"].mean_gap()
    };
    let similar = gap_at(10, &mut rng);
    let dissimilar = gap_at(20_000, &mut rng);
    assert!(
        similar <= dissimilar + 1e-9,
        "KwikSort: similar {similar} vs dissimilar {dissimilar}"
    );
    assert!(
        similar < 0.02,
        "KwikSort should be near-optimal on similar data"
    );
}

#[test]
fn unification_hurts_positional_algorithms() {
    // Paper Figure 5 / §7.3.2: unification's ending buckets devastate
    // BordaCount but not BioConsert. Construct the shape directly:
    // dissimilar top-k lists, unified.
    let scale = Scale::quick();
    let mut rng = rand::SeedableRng::seed_from_u64(5);
    let gen = rank_aggregation_with_ties::ragen::UnifiedGen {
        n_full: 40,
        t: 200_000,
        target_n: 14,
    };
    let mut acc = GapAccumulator::new();
    for i in 0..4 {
        let (data, _, _) = gen.generate(7, &mut rng);
        acc.add(&evaluate_dataset(&data, &paper_panel(5), true, &scale, i));
    }
    let s = acc.stats();
    assert!(
        s["BordaCount"].mean_gap() > 4.0 * s["BioConsert"].mean_gap().max(0.01),
        "Borda {} should be far worse than BioConsert {}",
        s["BordaCount"].mean_gap(),
        s["BioConsert"].mean_gap()
    );
}

#[test]
fn guidance_agrees_with_measured_features() {
    let sampler = UniformSampler::new(12);
    let mut rng = rand::SeedableRng::seed_from_u64(1);
    let data = sampler.sample_dataset(12, 7, &mut rng);
    let features = DatasetFeatures::measure(&data);
    assert_eq!(features.n, 12);
    let rec = recommend(&features, Priority::Quality);
    assert_eq!(rec.algorithm, "ExactAlgorithm", "n=12 is exactly solvable");
}
