//! End-to-end tests of the `rawt` command-line tool.

use std::process::Command;

fn rawt(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_rawt"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn write_paper_example() -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("rawt-test-{}.txt", std::process::id()));
    std::fs::write(
        &path,
        "# the paper's 2.2 example\n[{A},{D},{B,C}]\n[{A},{B,C},{D}]\n[{D},{A,C},{B}]\n",
    )
    .expect("temp file");
    path
}

#[test]
fn aggregate_finds_the_paper_optimum() {
    let path = write_paper_example();
    let (stdout, stderr, ok) = rawt(&["aggregate", path.to_str().unwrap(), "--algo", "BioConsert"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("K score:    5"), "stdout: {stdout}");
    assert!(stdout.contains("{B,C}"), "ties preserved: {stdout}");
}

#[test]
fn aggregate_with_exact_algorithm() {
    let path = write_paper_example();
    let (stdout, _, ok) = rawt(&[
        "aggregate",
        path.to_str().unwrap(),
        "--algo",
        "ExactAlgorithm",
    ]);
    assert!(ok);
    assert!(stdout.contains("K score:    5"), "stdout: {stdout}");
}

#[test]
fn aggregate_defaults_to_guidance() {
    let path = write_paper_example();
    let (stdout, _, ok) = rawt(&["aggregate", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("algorithm:"), "stdout: {stdout}");
}

#[test]
fn compare_ranks_algorithms_by_score() {
    let path = write_paper_example();
    let (stdout, _, ok) = rawt(&["compare", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("BioConsert"));
    // The first result line is the best: m-gap 0.
    let first = stdout
        .lines()
        .find(|l| l.contains("m-gap"))
        .expect("has results");
    assert!(
        first.contains("0.00%"),
        "best must have zero m-gap: {first}"
    );
}

#[test]
fn similarity_reports_features_and_guidance() {
    let path = write_paper_example();
    let (stdout, _, ok) = rawt(&["similarity", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("similarity s(R)"));
    assert!(stdout.contains("recommended (Quality): ExactAlgorithm"));
}

#[test]
fn distance_matches_the_paper() {
    // G(r1, r2) for the paper's r1, r2: count by hand = 2 (D moves across
    // the {B,C} bucket) — verify the library's value through the CLI.
    let (stdout, _, ok) = rawt(&["distance", "[{A},{D},{B,C}]", "[{A},{B,C},{D}]"]);
    assert!(ok);
    let g_line = stdout.lines().find(|l| l.starts_with("G ")).unwrap();
    let g: u64 = g_line.rsplit(' ').next().unwrap().parse().unwrap();
    // D vs B and D vs C are inverted: G = 2.
    assert_eq!(g, 2, "{stdout}");
    assert!(stdout.contains("τ"));
}

#[test]
fn generate_roundtrips_through_aggregate() {
    let (stdout, _, ok) = rawt(&["generate", "uniform", "--n", "8", "--m", "4", "--seed", "9"]);
    assert!(ok);
    let path = std::env::temp_dir().join("rawt-gen-test.txt");
    std::fs::write(&path, &stdout).unwrap();
    let (stdout2, _, ok2) = rawt(&["aggregate", path.to_str().unwrap(), "--algo", "BordaCount"]);
    assert!(ok2, "{stdout2}");
    assert!(stdout2.contains("elements:   8"));
}

#[test]
fn errors_are_reported_cleanly() {
    let (_, stderr, ok) = rawt(&["aggregate", "/nonexistent/file.txt"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
    let (_, stderr, ok) = rawt(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let path = write_paper_example();
    let (_, stderr, ok) = rawt(&["aggregate", path.to_str().unwrap(), "--algo", "NoSuchAlgo"]);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"));
}

#[test]
fn algo_specs_are_case_insensitive() {
    let path = write_paper_example();
    for spec in [
        "bioconsert",
        "BIOCONSERT",
        "bordacount",
        "bestof(kwiksort,5)",
        "exact",
    ] {
        let (stdout, stderr, ok) = rawt(&["aggregate", path.to_str().unwrap(), "--algo", spec]);
        assert!(ok, "spec {spec}: {stderr}");
        assert!(stdout.contains("K score:"), "spec {spec}: {stdout}");
    }
}

#[test]
fn typo_gets_a_did_you_mean_suggestion() {
    let path = write_paper_example();
    let (_, stderr, ok) = rawt(&["aggregate", path.to_str().unwrap(), "--algo", "KwikSrt"]);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");
    assert!(stderr.contains("did you mean"), "{stderr}");
    assert!(stderr.contains("KwikSort"), "{stderr}");
    // Nothing is close to this one: no suggestion, but still a clean error.
    let (_, stderr, ok) = rawt(&["aggregate", path.to_str().unwrap(), "--algo", "Zebra12345"]);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"), "{stderr}");
    assert!(!stderr.contains("did you mean"), "{stderr}");
}

#[test]
fn list_shows_the_registry() {
    let (stdout, _, ok) = rawt(&["list"]);
    assert!(ok);
    for name in ["BioConsert", "KwikSort", "MedRank", "Exact", "BestOf"] {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
    assert!(stdout.contains("aliases"), "{stdout}");
    assert!(stdout.contains("BestOf(KwikSort,20)"), "{stdout}");
}

#[test]
fn list_shows_table1_class_tags_and_ties_column() {
    let (stdout, _, ok) = rawt(&["list"]);
    assert!(ok);
    // Header with the Table 1 columns.
    let header = stdout
        .lines()
        .find(|l| l.contains("NAME"))
        .expect("table header");
    assert!(header.contains("CLASS"), "{header}");
    assert!(header.contains("TIES"), "{header}");
    // Every class tag of Table 1 appears.
    for tag in ["[K]", "[G]", "[P]"] {
        assert!(stdout.contains(tag), "missing class tag {tag}: {stdout}");
    }
    // BioConsert produces ties; Chanas cannot (Table 1).
    let bio = stdout
        .lines()
        .find(|l| l.starts_with("BioConsert"))
        .expect("BioConsert row");
    assert!(bio.contains("[G]") && bio.contains("yes"), "{bio}");
    let chanas = stdout
        .lines()
        .find(|l| l.starts_with("Chanas "))
        .expect("Chanas row");
    assert!(chanas.contains("[K]") && chanas.contains("no"), "{chanas}");
}

#[test]
fn aggregate_json_is_machine_consumable() {
    let path = write_paper_example();
    let (stdout, stderr, ok) = rawt(&[
        "aggregate",
        path.to_str().unwrap(),
        "--algo",
        "Exact",
        "--json",
    ]);
    assert!(ok, "stderr: {stderr}");
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    for needle in [
        "\"algorithm\":\"ExactAlgorithm\"",
        "\"spec\":\"Exact\"",
        "\"score\":5",
        "\"outcome\":\"optimal\"",
        "\"ranking\":[[\"A\"],[\"D\"],[\"B\",\"C\"]]",
        "\"trace\":[",
        "\"elapsed_secs\":",
        "\"normalization\":\"unify\"",
    ] {
        assert!(line.contains(needle), "missing {needle} in {line}");
    }
    // No human-readable noise on stdout in JSON mode.
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
}

#[test]
fn compare_json_reports_the_whole_panel_with_traces() {
    let path = write_paper_example();
    let (stdout, stderr, ok) = rawt(&["compare", path.to_str().unwrap(), "--json"]);
    assert!(ok, "stderr: {stderr}");
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"reports\":["), "{line}");
    assert!(line.contains("\"similarity\":"), "{line}");
    // One report object per panel member (13 paper algorithms fit n = 4).
    assert_eq!(line.matches("\"algorithm\":").count(), 13, "{line}");
    assert_eq!(line.matches("\"trace\":[").count(), 13, "{line}");
    // The sorted-best report leads with m-gap 0.
    assert!(line.contains("\"gap\":0.000000"), "{line}");
}

#[test]
fn aggregate_progress_streams_incumbents_to_stderr() {
    let path = write_paper_example();
    let (stdout, stderr, ok) = rawt(&[
        "aggregate",
        path.to_str().unwrap(),
        "--algo",
        "BioConsert",
        "--progress",
    ]);
    assert!(ok, "stderr: {stderr}");
    // The normal report still lands on stdout…
    assert!(stdout.contains("K score:    5"), "{stdout}");
    // …while the live job lifecycle streams on stderr.
    assert!(stderr.contains("started:"), "{stderr}");
    assert!(stderr.contains("incumbent:  K ="), "{stderr}");
    assert!(stderr.contains("finished:   heuristic"), "{stderr}");
}

#[test]
fn list_json_shares_the_service_registry_serializer() {
    let (stdout, _, ok) = rawt(&["list", "--json"]);
    assert!(ok);
    let line = stdout.trim();
    // One machine-readable line, and byte-identical to the serializer
    // behind `GET /v1/algorithms` — one dump, two front ends.
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
    assert_eq!(line, service::proto::registry_json());
    let doc = service::json::Json::parse(line).expect("valid JSON");
    let entries = doc.as_array().expect("array");
    assert!(entries.len() >= 17, "whole registry: {}", entries.len());
    assert!(entries
        .iter()
        .any(|e| { e.get("name").and_then(service::json::Json::as_str) == Some("BioConsert") }));
}

/// Spawn `rawt serve` on an ephemeral port and return (child, addr).
fn spawn_server() -> (std::process::Child, String) {
    use std::io::BufRead;
    let mut child = Command::new(env!("CARGO_BIN_EXE_rawt"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("server spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup line");
    let addr = line
        .split_whitespace()
        .find(|w| w.starts_with("http://"))
        .unwrap_or_else(|| panic!("no address in startup line {line:?}"))
        .to_owned();
    (child, addr)
}

#[test]
fn serve_and_remote_aggregate_render_identically_and_drain_on_sigint() {
    let path = write_paper_example();
    let (mut child, addr) = spawn_server();
    let (local, _, ok) = rawt(&["aggregate", path.to_str().unwrap(), "--algo", "Exact"]);
    assert!(ok);
    let (remote, stderr, ok) = rawt(&[
        "aggregate",
        path.to_str().unwrap(),
        "--algo",
        "Exact",
        "--remote",
        &addr,
    ]);
    assert!(ok, "remote aggregate failed: {stderr}");
    // Everything except the wall-clock outcome line renders identically.
    let stable = |out: &str| -> Vec<String> {
        out.lines()
            .filter(|l| !l.starts_with("outcome:"))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(
        stable(&remote),
        stable(&local),
        "remote: {remote}\nlocal: {local}"
    );
    assert!(remote.contains("outcome:    optimal"), "{remote}");
    // The remote --json envelope carries the same fields as the local one.
    let (remote_json, _, ok) = rawt(&[
        "aggregate",
        path.to_str().unwrap(),
        "--algo",
        "Exact",
        "--json",
        "--remote",
        &addr,
    ]);
    assert!(ok);
    // The report bytes are spliced from the server's shared serializer —
    // including its key order and {:.6} float formatting — so the remote
    // envelope matches the local one's shape, not a re-serialized tree.
    for needle in [
        "\"score\":5",
        "\"outcome\":\"optimal\"",
        "\"trace\":[",
        "\"gap\":0.000000",
        "\"algorithm\":\"ExactAlgorithm\",\"spec\":\"Exact\"",
    ] {
        assert!(
            remote_json.contains(needle),
            "missing {needle}: {remote_json}"
        );
    }
    // SIGINT drains the server cleanly (exit status 0).
    let pid = child.id().to_string();
    let sent = Command::new("kill")
        .args(["-INT", &pid])
        .status()
        .expect("kill runs");
    assert!(sent.success());
    let status = child.wait().expect("server exits");
    assert!(
        status.success(),
        "serve must drain cleanly on SIGINT: {status:?}"
    );
}

#[test]
fn second_sigint_forces_serve_to_exit_immediately() {
    use rand::SeedableRng;
    use std::io::BufRead;
    let mut child = Command::new(env!("CARGO_BIN_EXE_rawt"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");
    let mut startup = String::new();
    std::io::BufReader::new(child.stdout.take().expect("piped stdout"))
        .read_line(&mut startup)
        .expect("startup line");
    let addr = startup
        .split_whitespace()
        .find(|w| w.starts_with("http://"))
        .expect("address in startup line")
        .to_owned();
    // Pin the drain open with a genuinely running job: BioConsert polls
    // its cancel token once per sweep, and a sweep over n = 300 takes
    // long enough that the cooperative drain is still pending when the
    // second SIGINT arrives. (An idle server drains instantly — then a
    // clean exit 0 would be correct, and the test would race it.)
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let data = rank_aggregation_with_ties::ragen::UniformSampler::new(300)
        .sample_dataset(300, 10, &mut rng);
    let mut text = String::new();
    for r in data.rankings() {
        text.push_str(&r.to_string());
        text.push('\n');
    }
    let client = service::client::Client::new(&addr);
    let job = client
        .submit(&service::proto::JobSubmission {
            algo: Some("BioConsert".into()),
            ..service::proto::JobSubmission::new(text)
        })
        .expect("submit");
    // The first event proves the kernel is running, not queued.
    let mut events = client.events(job.id).expect("event stream");
    events.next().expect("started event").expect("parses");
    let pid = child.id().to_string();
    let sigint = || {
        let sent = Command::new("kill")
            .args(["-INT", &pid])
            .status()
            .expect("kill runs");
        assert!(sent.success());
    };
    // Two pending standard signals coalesce into one delivery, so the
    // second Ctrl-C only counts once the first has been *handled* —
    // which the drain announcement on stderr proves.
    sigint();
    let mut stderr = std::io::BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut line = String::new();
    loop {
        line.clear();
        let n = stderr.read_line(&mut line).expect("read stderr");
        assert!(n > 0, "server exited before announcing the drain");
        if line.contains("draining") {
            break;
        }
    }
    sigint();
    let status = child.wait().expect("server exits");
    assert_eq!(
        status.code(),
        Some(130),
        "a second SIGINT must force an immediate exit: {status:?}"
    );
}

#[test]
fn aggregate_reports_outcome_and_exact_proves_optimality() {
    let path = write_paper_example();
    let (stdout, _, ok) = rawt(&["aggregate", path.to_str().unwrap(), "--algo", "Exact"]);
    assert!(ok);
    assert!(stdout.contains("outcome:    optimal"), "{stdout}");
    let (stdout, _, ok) = rawt(&["aggregate", path.to_str().unwrap(), "--algo", "BordaCount"]);
    assert!(ok);
    assert!(stdout.contains("outcome:    heuristic"), "{stdout}");
}
