//! Integration tests of the anytime execution API (DESIGN.md §9):
//! event-stream ordering, monotone incumbent traces, cooperative
//! cancellation semantics, and the submit+wait ≡ run equivalence.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::ragen::UniformSampler;
use rank_aggregation_with_ties::rank_core::parse::parse_ranking;
use std::time::Duration;

fn wider_dataset() -> Dataset {
    Dataset::new(vec![
        parse_ranking("[{0,1},{2,3},{4},{5,6},{7}]").unwrap(),
        parse_ranking("[{7},{5},{2},{1,6},{0,3,4}]").unwrap(),
        parse_ranking("[{2},{0,4},{1,3},{6,7},{5}]").unwrap(),
        parse_ranking("[{4,5},{6},{0,2},{1,7},{3}]").unwrap(),
    ])
    .unwrap()
}

/// A dataset big enough that BioConsert cannot finish before a cancel
/// issued right after its first incumbent lands.
fn big_uniform(n: usize, m: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    UniformSampler::new(n).sample_dataset(n, m, &mut rng)
}

// ------------------------------------------------------------ event stream

#[test]
fn events_run_started_incumbents_finished_in_order() {
    let handle = Engine::new()
        .submit(AggregationRequest::new(wider_dataset(), AlgoSpec::BioConsert).with_seed(3));
    let events: Vec<Event> = handle.events().collect();
    let report = handle.wait();

    assert!(
        matches!(
            events.first(),
            Some(Event::Started {
                spec: AlgoSpec::BioConsert,
                seed: 3
            })
        ),
        "first event must be Started: {events:?}"
    );
    assert_eq!(
        events.last(),
        Some(&Event::Finished(report.outcome)),
        "last event must be Finished with the report's outcome"
    );
    let incumbent_scores: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::Incumbent { score, .. } => Some(*score),
            _ => None,
        })
        .collect();
    assert!(!incumbent_scores.is_empty(), "at least the final incumbent");
    assert!(
        incumbent_scores.windows(2).all(|w| w[1] < w[0]),
        "incumbent scores must strictly decrease: {incumbent_scores:?}"
    );
    assert_eq!(
        *incumbent_scores.last().unwrap(),
        report.score,
        "the last incumbent event is the reported consensus"
    );
}

#[test]
fn every_report_carries_a_monotone_trace_ending_at_its_score() {
    // Ailon is excluded: its LP rounding may legitimately end worse than
    // the best-input incumbent it publishes early (the trace then ends
    // below the reported score — documented in DESIGN.md §9).
    let specs = [
        AlgoSpec::BioConsert,
        AlgoSpec::Borda,
        AlgoSpec::KwikSort,
        AlgoSpec::MedRank(0.5),
        AlgoSpec::PickAPerm,
        AlgoSpec::RepeatChoice,
        AlgoSpec::Chanas,
        AlgoSpec::ChanasBoth,
        AlgoSpec::BnB { beam: None },
        AlgoSpec::Mc4,
        AlgoSpec::Exact,
        AlgoSpec::BestOf {
            base: Box::new(AlgoSpec::KwikSort),
            runs: 6,
        },
    ];
    let engine = Engine::new();
    for spec in specs {
        let report =
            engine.run(&AggregationRequest::new(wider_dataset(), spec.clone()).with_seed(7));
        assert!(
            !report.trace.is_empty(),
            "{spec}: every run publishes at least its final result"
        );
        assert!(
            report.trace.windows(2).all(|w| w[1].score < w[0].score),
            "{spec}: trace scores must strictly decrease: {:?}",
            report.trace
        );
        assert!(
            report
                .trace
                .windows(2)
                .all(|w| w[1].elapsed >= w[0].elapsed),
            "{spec}: trace times must not go backwards"
        );
        assert_eq!(
            report.trace.last().unwrap().score,
            report.score,
            "{spec}: the trace ends at the reported score"
        );
        assert!(report.time_to_first_incumbent().is_some());
        assert!(report.time_to_final_incumbent() <= Some(report.trace.last().unwrap().elapsed));
    }
}

// ------------------------------------------------------- lower-bound channel

/// Replay a drained event stream, checking every invariant the
/// lower-bound channel guarantees (DESIGN.md §11.2): bounds strictly
/// increase, no bound ever exceeds any incumbent score, and every
/// event's `gap` is exactly `score − lower_bound` against the state at
/// emission time.
fn check_bound_invariants(events: &[Event]) -> (Vec<u64>, Vec<u64>) {
    let mut bounds: Vec<u64> = Vec::new();
    let mut scores: Vec<u64> = Vec::new();
    let mut last_bound: Option<u64> = None;
    let mut best_score: Option<u64> = None;
    for event in events {
        match event {
            Event::Incumbent { score, gap, .. } => {
                assert_eq!(
                    *gap,
                    last_bound.map(|lb| score - lb),
                    "incumbent gap must be score − lower_bound: {events:?}"
                );
                best_score = Some(*score);
                scores.push(*score);
            }
            Event::LowerBound {
                lower_bound, gap, ..
            } => {
                assert!(
                    last_bound.is_none_or(|prev| prev < *lower_bound),
                    "streamed lower bounds must strictly increase: {events:?}"
                );
                assert_eq!(
                    *gap,
                    best_score.map(|s| s - lower_bound),
                    "bound gap must be best score − lower_bound: {events:?}"
                );
                last_bound = Some(*lower_bound);
                bounds.push(*lower_bound);
            }
            _ => {}
        }
    }
    (scores, bounds)
}

#[test]
fn exact_jobs_stream_a_monotone_lower_bound_meeting_the_score() {
    // Disagreeing-enough data that the proof search actually explores
    // (a rotation family has no safe split and no trivial optimum).
    let data = big_uniform(14, 4, 31);
    let engine = Engine::new();
    let handle = engine.submit(AggregationRequest::new(data, AlgoSpec::Exact).with_seed(5));
    let events: Vec<Event> = handle.events().collect();
    let report = handle.wait();

    let (scores, bounds) = check_bound_invariants(&events);
    assert!(
        !bounds.is_empty(),
        "the exact solver must publish lower bounds: {events:?}"
    );
    // Every certified bound is ≤ the optimum ≤ every incumbent score —
    // across the whole stream, not just pointwise in time.
    let max_bound = *bounds.iter().max().unwrap();
    let min_score = *scores.iter().min().unwrap();
    assert!(
        max_bound <= min_score,
        "a lower bound exceeded an incumbent: bounds {bounds:?} scores {scores:?}"
    );
    assert_eq!(report.outcome, Outcome::Optimal);
    assert_eq!(
        report.lower_bound,
        Some(report.score),
        "a proved-optimal report's bound meets its score"
    );
    assert_eq!(report.certified_gap(), Some(0));
    assert_eq!(max_bound, report.score, "the stream ends certified");
}

#[test]
fn report_traces_carry_monotone_lower_bounds_below_their_scores() {
    let engine = Engine::new();
    for spec in [
        AlgoSpec::Exact,
        AlgoSpec::Ailon,
        AlgoSpec::BnB { beam: None },
        AlgoSpec::BioConsert,
    ] {
        let report =
            engine.run(&AggregationRequest::new(wider_dataset(), spec.clone()).with_seed(3));
        let bounds: Vec<Option<u64>> = report.trace.iter().map(|p| p.lower_bound).collect();
        for (p, lb) in report.trace.iter().zip(&bounds) {
            if let Some(lb) = lb {
                assert!(*lb <= p.score, "{spec}: trace point bound above its score");
            }
        }
        assert!(
            bounds
                .windows(2)
                .all(|w| w[0].unwrap_or(0) <= w[1].unwrap_or(u64::MAX)),
            "{spec}: trace bounds must be non-decreasing: {bounds:?}"
        );
        if let Some(lb) = report.lower_bound {
            assert!(lb <= report.score, "{spec}: report bound above score");
        }
        match report.outcome {
            Outcome::Optimal => assert_eq!(report.lower_bound, Some(report.score), "{spec}"),
            _ => assert_eq!(report.spec, spec),
        }
        // Heuristics prove nothing and must not pretend to.
        if matches!(report.spec, AlgoSpec::BioConsert) {
            assert_eq!(report.lower_bound, None);
            assert_eq!(report.certified_gap(), None);
        }
    }
}

#[test]
fn blocking_run_records_bounds_without_a_subscriber() {
    // `Engine::run` attaches a subscriber-less sink: the lower bound must
    // still land in the report (the satellite audit: nothing about the
    // channel may depend on someone streaming).
    let data = big_uniform(12, 5, 7);
    let report = Engine::new().run(&AggregationRequest::new(data, AlgoSpec::Exact).with_seed(2));
    assert_eq!(report.outcome, Outcome::Optimal);
    assert_eq!(report.lower_bound, Some(report.score));
}

// ------------------------------------------------------------ cancellation

#[test]
fn cancel_then_wait_returns_cancelled_with_the_last_incumbent() {
    let data = big_uniform(200, 20, 9);
    let engine = Engine::new();
    let handle = engine.submit(AggregationRequest::new(data.clone(), AlgoSpec::BioConsert));

    // Wait for the first incumbent, then cancel mid-run.
    let mut last_incumbent = None;
    for event in handle.events() {
        if let Event::Incumbent { score, .. } = event {
            last_incumbent = Some(score);
            handle.cancel();
            break;
        }
    }
    assert!(last_incumbent.is_some(), "BioConsert publishes incumbents");
    // Drain the rest of the stream: more incumbents may land between the
    // cancel request and the run observing it at a checkpoint.
    for event in handle.events() {
        if let Event::Incumbent { score, .. } = event {
            last_incumbent = Some(score);
        }
    }
    let report = handle.wait();

    assert_eq!(
        report.outcome,
        Outcome::Cancelled,
        "a cancel issued at the first of many sweeps must win"
    );
    assert!(!report.outcome.completed());
    assert_eq!(
        Some(report.score),
        last_incumbent,
        "the cancelled report's score equals its last Incumbent event"
    );
    // The harvested ranking is a valid complete consensus whose true
    // Kemeny score matches what the report claims.
    assert!(data.is_complete_ranking(&report.ranking));
    assert_eq!(kemeny_score(&report.ranking, &data), report.score);
    assert_eq!(report.trace.last().unwrap().score, report.score);
}

#[test]
fn cancel_before_start_still_returns_a_valid_ranking() {
    let data = big_uniform(80, 10, 4);
    let handle = Engine::new().submit(AggregationRequest::new(data.clone(), AlgoSpec::BioConsert));
    handle.cancel();
    let report = handle.wait();
    // The cancel is issued without synchronizing on an event, so on a
    // loaded machine the job can legitimately win the race and complete;
    // either way the report must be a valid, correctly-scored consensus.
    assert!(
        matches!(report.outcome, Outcome::Cancelled | Outcome::Heuristic),
        "unexpected outcome {:?}",
        report.outcome
    );
    assert!(data.is_complete_ranking(&report.ranking));
    assert_eq!(kemeny_score(&report.ranking, &data), report.score);
}

#[test]
fn best_so_far_is_harvestable_while_running_and_cancel_is_idempotent() {
    let data = big_uniform(100, 12, 11);
    let handle = Engine::new().submit(AggregationRequest::new(data.clone(), AlgoSpec::BioConsert));
    // Block until the first incumbent exists, then peek without waiting.
    let mut saw_incumbent = false;
    for event in handle.events() {
        if matches!(event, Event::Incumbent { .. }) {
            saw_incumbent = true;
            break;
        }
    }
    assert!(saw_incumbent);
    let (score, ranking) = handle.best_so_far().expect("incumbent just streamed");
    assert!(data.is_complete_ranking(&ranking));
    assert_eq!(kemeny_score(&ranking, &data), score);
    handle.cancel();
    handle.cancel(); // idempotent
    let report = handle.wait();
    assert!(
        report.score <= score,
        "the final report can only improve on a harvested snapshot"
    );
}

#[test]
fn cancelled_exact_returns_its_heuristic_incumbent_unproved() {
    // The exact solver seeds itself with a BioConsert incumbent; a cancel
    // during the proof search must return that incumbent, not panic, and
    // must not claim optimality. (n = 48 with few voters keeps the proof
    // search far longer than the cancel latency.)
    let data = big_uniform(48, 6, 2);
    let handle = Engine::new().submit(AggregationRequest::new(data.clone(), AlgoSpec::Exact));
    for event in handle.events() {
        if matches!(event, Event::Incumbent { .. }) {
            handle.cancel();
            break;
        }
    }
    let report = handle.wait();
    assert_ne!(report.outcome, Outcome::Optimal);
    assert!(data.is_complete_ranking(&report.ranking));
    assert_eq!(kemeny_score(&report.ranking, &data), report.score);
}

// ------------------------------------------------- submit ≡ run equivalence

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// `submit` + `wait` must be bit-identical to the blocking `run` for a
    /// fixed seed, spec by spec (ranking, score, outcome — not timings).
    #[test]
    fn submit_wait_matches_run_bit_identically(seed in 0u64..500) {
        let data = wider_dataset();
        let specs = vec![
            AlgoSpec::BioConsert,
            AlgoSpec::KwikSort,
            AlgoSpec::BestOf { base: Box::new(AlgoSpec::KwikSort), runs: 5 },
            AlgoSpec::MedRank(0.7),
            AlgoSpec::Exact,
        ];
        let engine = Engine::new();
        for spec in specs {
            let request = AggregationRequest::new(data.clone(), spec.clone()).with_seed(seed);
            let submitted = engine.submit(request.clone()).wait();
            let ran = engine.run(&request);
            prop_assert_eq!(&submitted.ranking, &ran.ranking, "spec {} seed {}", spec, seed);
            prop_assert_eq!(submitted.score, ran.score);
            prop_assert_eq!(submitted.outcome, ran.outcome);
            prop_assert_eq!(submitted.seed, ran.seed);
        }
    }
}

// ------------------------------------------------------------ context API

#[test]
fn checkpoint_distinguishes_cancel_from_deadline() {
    let ctx = AlgoContext::seeded(0);
    assert!(ctx.checkpoint().is_continue());
    assert!(!ctx.cancelled());

    // Deadline path: Stop + timed_out, no cancellation.
    let expired = AlgoContext::seeded_with_budget(0, Duration::ZERO);
    assert!(expired.checkpoint().is_stop());
    assert!(expired.timed_out());
    assert!(!expired.cancelled());

    // Cancel path: Stop + cancelled, and it wins over a live deadline.
    let ctx = AlgoContext::seeded_with_budget(0, Duration::from_secs(3600));
    ctx.cancel_token().cancel();
    assert!(ctx.checkpoint().is_stop());
    assert!(ctx.cancelled());
    assert!(!ctx.timed_out());

    // Workers share the cancellation flag and observation.
    let base = AlgoContext::seeded(1);
    let worker = base.worker(5);
    base.cancel_token().cancel();
    assert!(worker.checkpoint().is_stop());
    assert!(base.cancelled());
}

#[test]
fn offers_without_a_sink_are_noops_and_sinks_keep_only_improvements() {
    let ctx = AlgoContext::seeded(0);
    let r5 = parse_ranking("[{0},{1},{2}]").unwrap();
    ctx.offer_incumbent(&r5, 5); // no sink: must not panic
    assert!(!ctx.has_sink());

    let sink = std::sync::Arc::new(IncumbentSink::new());
    let mut ctx = AlgoContext::seeded(0);
    ctx.attach_sink(std::sync::Arc::clone(&sink));
    assert!(ctx.has_sink());
    let r3 = parse_ranking("[{0},{1,2}]").unwrap();
    ctx.offer_incumbent(&r5, 5);
    ctx.offer_incumbent(&r3, 7); // worse: ignored
    ctx.offer_incumbent(&r5, 5); // equal: ignored
    ctx.offer_incumbent(&r3, 3); // better: recorded
    let (best_score, best_ranking) = sink.best_so_far().expect("offers recorded");
    assert_eq!(best_score, 3);
    assert_eq!(best_ranking, r3);
    let trace = sink.trace();
    assert_eq!(
        trace.iter().map(|p| p.score).collect::<Vec<_>>(),
        vec![5, 3]
    );
}
