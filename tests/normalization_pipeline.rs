//! End-to-end normalization invariants on the real-world facsimiles:
//! raw → projection/unification/threshold-k → aggregation → denormalize.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_aggregation_with_ties::datasets::realworld;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::normalize::{threshold_k, unification_broken};

fn raw_f1(seed: u64) -> Vec<Ranking> {
    realworld::f1::generate(
        &realworld::f1::Config::default(),
        &mut StdRng::seed_from_u64(seed),
    )
}

#[test]
fn projection_support_is_intersection() {
    for seed in 0..5 {
        let raw = raw_f1(seed);
        let p = projection(&raw).expect("regulars overlap");
        for &orig in &p.mapping {
            assert!(
                raw.iter().all(|r| r.contains(orig)),
                "projected element {orig} missing from some ranking"
            );
        }
        // Maximality: every element in all rankings is kept.
        let all_common = raw[0]
            .support()
            .into_iter()
            .filter(|&e| raw.iter().all(|r| r.contains(e)))
            .count();
        assert_eq!(all_common, p.dataset.n());
    }
}

#[test]
fn unification_support_is_union_and_order_preserved() {
    for seed in 0..5 {
        let raw = raw_f1(seed);
        let u = unification(&raw).expect("non-empty");
        let union: usize = {
            let mut all: Vec<Element> = raw.iter().flat_map(|r| r.elements()).collect();
            all.sort_unstable();
            all.dedup();
            all.len()
        };
        assert_eq!(u.dataset.n(), union);
        // Order among originally-present elements is untouched.
        for (ri, r) in raw.iter().enumerate() {
            let ur = u.dataset.ranking(ri);
            let back = u.denormalize(ur);
            for a in r.elements() {
                for b in r.elements() {
                    if r.bucket_of(a) < r.bucket_of(b) {
                        assert!(
                            back.bucket_of(a) < back.bucket_of(b),
                            "unification reordered {a} vs {b} in ranking {ri}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn unification_broken_yields_permutations() {
    let raw = realworld::biomedical::generate(
        &realworld::biomedical::Config::default(),
        &mut StdRng::seed_from_u64(3),
    );
    let b = unification_broken(&raw).expect("non-empty");
    assert!(b.dataset.all_permutations());
    assert_eq!(
        b.dataset.n(),
        unification(&raw).unwrap().dataset.n(),
        "breaking must not change the element set"
    );
}

#[test]
fn threshold_k_monotone_in_k() {
    let raw = raw_f1(9);
    let m = raw.len();
    let mut prev = usize::MAX;
    for k in 1..=m {
        let n = threshold_k(&raw, k).map_or(0, |t| t.dataset.n());
        assert!(n <= prev, "threshold-k must shrink as k grows");
        prev = n;
    }
    assert_eq!(
        threshold_k(&raw, 1).unwrap().dataset.n(),
        unification(&raw).unwrap().dataset.n()
    );
    assert_eq!(
        threshold_k(&raw, m).unwrap().dataset.n(),
        projection(&raw).unwrap().dataset.n()
    );
}

#[test]
fn aggregate_and_denormalize_roundtrip() {
    let raw = raw_f1(11);
    let u = unification(&raw).expect("non-empty");
    let mut ctx = AlgoContext::seeded(0);
    let consensus = BioConsert::default().run(&u.dataset, &mut ctx);
    let denorm = u.denormalize(&consensus);
    assert_eq!(denorm.n_elements(), u.dataset.n());
    // Every original pilot appears exactly once in the denormalized
    // standings.
    for &orig in &u.mapping {
        assert!(denorm.contains(orig));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn top_k_is_a_prefix(k in 1usize..=12, seed in 0u64..50) {
        let raw = raw_f1(seed);
        let r = &raw[0];
        let t = top_k(r, k);
        prop_assert!(t.n_elements() >= k.min(r.n_elements()));
        // Whole buckets only: the cut never splits a bucket.
        for (i, b) in t.buckets().enumerate() {
            prop_assert_eq!(b, r.bucket(i));
        }
        // Minimality: dropping the last bucket goes below k.
        if t.n_buckets() > 1 {
            let without_last: usize =
                (0..t.n_buckets() - 1).map(|i| t.bucket(i).len()).sum();
            prop_assert!(without_last < k);
        }
    }
}
