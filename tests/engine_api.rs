//! Integration tests of the engine API: spec round-trips, report
//! determinism, concurrent-batch equivalence, per-request outcome
//! isolation, and the shared cost-matrix build contract.

use proptest::prelude::*;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::engine::SpecErrorKind;
use rank_aggregation_with_ties::rank_core::engine::{
    registry, suggest, BatchBuilder, DEFAULT_MIN_RUNS,
};
use rank_aggregation_with_ties::rank_core::parse::parse_ranking;
use std::time::Duration;

fn paper_dataset() -> Dataset {
    Dataset::new(vec![
        parse_ranking("[{0},{3},{1,2}]").unwrap(),
        parse_ranking("[{0},{1,2},{3}]").unwrap(),
        parse_ranking("[{3},{0,2},{1}]").unwrap(),
    ])
    .unwrap()
}

fn wider_dataset() -> Dataset {
    Dataset::new(vec![
        parse_ranking("[{0,1},{2,3},{4},{5,6},{7}]").unwrap(),
        parse_ranking("[{7},{5},{2},{1,6},{0,3,4}]").unwrap(),
        parse_ranking("[{2},{0,4},{1,3},{6,7},{5}]").unwrap(),
        parse_ranking("[{4,5},{6},{0,2},{1,7},{3}]").unwrap(),
    ])
    .unwrap()
}

// ---------------------------------------------------------------- specs

#[test]
fn every_registered_algorithm_round_trips_parse_display() {
    for entry in registry() {
        let spec = (entry.example)();
        let text = spec.to_string();
        let parsed = AlgoSpec::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {text:?} failed to parse back: {e}", entry.canonical));
        assert_eq!(
            parsed, spec,
            "{}: display {text:?} must round-trip",
            entry.canonical
        );
        // The canonical head must at least be recognized: either it
        // parses outright (parameterized entries default their
        // arguments), or the error is about arguments — never an
        // unknown-name error.
        if let Err(e) = AlgoSpec::parse(entry.canonical) {
            assert!(
                e.message.contains("takes"),
                "canonical name {:?} must be recognized: {e}",
                entry.canonical
            );
        }
        for alias in entry.aliases {
            assert!(AlgoSpec::parse(alias).is_ok(), "alias {alias:?} must parse");
        }
    }
}

#[test]
fn panels_round_trip_including_paper_names() {
    for spec in full_panel(DEFAULT_MIN_RUNS) {
        assert_eq!(AlgoSpec::parse(&spec.to_string()).unwrap(), spec);
        // The paper-table spelling resolves to the same spec at the
        // default repeat count ("KwikSortMin" = BestOf(KwikSort,20)).
        assert_eq!(
            AlgoSpec::parse(&spec.paper_name()).unwrap(),
            spec,
            "paper name {:?} must resolve",
            spec.paper_name()
        );
    }
}

#[test]
fn parsing_is_case_insensitive_and_alias_aware() {
    let cases = [
        ("bioconsert", AlgoSpec::BioConsert),
        ("BORDACOUNT", AlgoSpec::Borda),
        ("borda", AlgoSpec::Borda),
        ("copelandmethod", AlgoSpec::Copeland),
        ("MEDRank(0.7)", AlgoSpec::MedRank(0.7)),
        ("medrank", AlgoSpec::MedRank(0.5)),
        ("pick-a-perm", AlgoSpec::PickAPerm),
        ("ailon3/2", AlgoSpec::Ailon),
        ("EXACT", AlgoSpec::Exact),
        ("ExactAlgorithm", AlgoSpec::Exact),
        (
            "bestof(kwiksort, 7)",
            AlgoSpec::BestOf {
                base: Box::new(AlgoSpec::KwikSort),
                runs: 7,
            },
        ),
        (
            "KwikSortMin",
            AlgoSpec::BestOf {
                base: Box::new(AlgoSpec::KwikSort),
                runs: DEFAULT_MIN_RUNS,
            },
        ),
        ("BnB(beam=8)", AlgoSpec::BnB { beam: Some(8) }),
        ("bnb(8)", AlgoSpec::BnB { beam: Some(8) }),
        (
            "BestOf(BestOf(KwikSort,2),3)",
            AlgoSpec::BestOf {
                base: Box::new(AlgoSpec::BestOf {
                    base: Box::new(AlgoSpec::KwikSort),
                    runs: 2,
                }),
                runs: 3,
            },
        ),
    ];
    for (text, want) in cases {
        assert_eq!(AlgoSpec::parse(text).unwrap(), want, "input {text:?}");
    }
}

#[test]
fn unknown_names_get_suggestions() {
    let err = AlgoSpec::parse("KwikSrt").unwrap_err();
    assert_eq!(err.kind, SpecErrorKind::UnknownName);
    assert_eq!(err.suggestion.as_deref(), Some("KwikSort"));
    assert!(err.to_string().contains("unknown algorithm"), "{err}");
    let err = AlgoSpec::parse("bordcount").unwrap_err();
    assert_eq!(err.suggestion.as_deref(), Some("BordaCount"));
    let err = AlgoSpec::parse("Zebra12345").unwrap_err();
    assert_eq!(err.suggestion, None);
    assert_eq!(suggest("exactt").as_deref(), Some("Exact"));
    // Bad arguments on a *known* head are argument errors: no
    // "unknown algorithm" misdirection, no did-you-mean echo.
    for bad in [
        "MedRank(2.5)",
        "BestOf(KwikSort,0)",
        "BestOf(KwikSort)",
        "KwikSort(3)",
        "BestOf(KwikSort,2",
    ] {
        let err = AlgoSpec::parse(bad).unwrap_err();
        assert_eq!(err.kind, SpecErrorKind::InvalidArguments, "{bad}");
        assert_eq!(err.suggestion, None, "{bad}");
        assert!(err.to_string().contains("invalid algorithm spec"), "{err}");
    }
}

#[test]
fn generic_best_of_paper_names_parse_back() {
    let spec = AlgoSpec::BestOf {
        base: Box::new(AlgoSpec::BioConsert),
        runs: 5,
    };
    assert_eq!(spec.paper_name(), "BestOf(BioConsert,5)");
    assert_eq!(AlgoSpec::parse(&spec.paper_name()).unwrap(), spec);
}

#[test]
fn size_caps_live_on_the_spec() {
    assert_eq!(AlgoSpec::Ailon.max_n(), Some(45));
    assert_eq!(AlgoSpec::Exact.max_n(), Some(64));
    assert_eq!(AlgoSpec::BioConsert.max_n(), None);
    // BestOf inherits its base's bound.
    let wrapped = AlgoSpec::BestOf {
        base: Box::new(AlgoSpec::Ailon),
        runs: 3,
    };
    assert_eq!(wrapped.max_n(), Some(45));
}

// ---------------------------------------------------------------- engine

#[test]
fn same_seed_and_spec_give_bit_identical_reports() {
    let data = wider_dataset();
    let specs = [
        AlgoSpec::BioConsert,
        AlgoSpec::KwikSort,
        AlgoSpec::BestOf {
            base: Box::new(AlgoSpec::KwikSort),
            runs: 8,
        },
        AlgoSpec::MedRank(0.5),
        AlgoSpec::Exact,
    ];
    for seed in [0u64, 7, 42] {
        for spec in &specs {
            let request = AggregationRequest::new(data.clone(), spec.clone()).with_seed(seed);
            // Fresh engines: determinism must not depend on cache state,
            // engine identity, or how often the request ran before.
            let a = Engine::new().run(&request);
            let engine_b = Engine::with_workers(2);
            let _warmup = engine_b.run(&request);
            let b = engine_b.run(&request);
            assert_eq!(a.ranking, b.ranking, "{spec} seed {seed}");
            assert_eq!(a.score, b.score, "{spec} seed {seed}");
            assert_eq!(a.outcome, b.outcome, "{spec} seed {seed}");
            assert_eq!(a.seed, seed);
            assert_eq!(&a.spec, spec);
        }
    }
}

#[test]
fn exact_reports_optimal_with_zero_gap() {
    let report = Engine::new().run(&AggregationRequest::new(paper_dataset(), AlgoSpec::Exact));
    assert_eq!(report.outcome, Outcome::Optimal);
    assert_eq!(report.score, 5);
    assert_eq!(report.gap, Some(0.0));
    assert!(report.outcome.completed());
}

#[test]
fn batch_gaps_use_the_proven_optimum_as_reference() {
    let requests = AggregationRequest::batch(paper_dataset())
        .spec(AlgoSpec::Exact)
        .spec(AlgoSpec::BioConsert)
        .spec(AlgoSpec::RepeatChoice)
        .seed(1)
        .build();
    let reports = Engine::new().run_batch(&requests);
    assert_eq!(reports[0].outcome, Outcome::Optimal);
    for r in &reports {
        let gap = r.gap.expect("batch reports carry gaps");
        assert!(
            (r.score == reports[0].score) == (gap == 0.0),
            "{}",
            r.algorithm()
        );
        assert!(gap >= 0.0);
    }
}

#[test]
fn one_timeout_does_not_contaminate_neighbour_reports() {
    // The pre-engine harness shared outcome flags across a context
    // family: one algorithm's timeout stayed visible to every later
    // algorithm unless the caller remembered `reset_flags()`. Force a
    // timeout in the *middle* of a batch and check its neighbours.
    let data = wider_dataset();
    let mut requests = AggregationRequest::batch(data)
        .spec(AlgoSpec::Borda)
        .spec(AlgoSpec::BioConsert) // this one gets a zero budget
        .spec(AlgoSpec::KwikSort)
        .spec(AlgoSpec::Exact)
        .seed(3)
        .build();
    requests[1].budget = Some(Duration::ZERO);
    let reports = Engine::new().run_batch(&requests);
    assert_eq!(
        reports[1].outcome,
        Outcome::TimedOut,
        "zero budget must time out"
    );
    assert_eq!(reports[0].outcome, Outcome::Heuristic);
    assert_eq!(reports[2].outcome, Outcome::Heuristic);
    assert_eq!(reports[3].outcome, Outcome::Optimal);
    // The timed-out report still returns its best-effort ranking, but is
    // "no result" for gap purposes (and can never receive a negative gap).
    assert!(reports[1].ranking.n_buckets() > 0);
    assert_eq!(reports[1].gap, None);
    // …and completed neighbours still carry gaps against the optimum.
    assert_eq!(reports[3].gap, Some(0.0));
}

#[test]
fn a_batch_over_one_dataset_builds_the_cost_matrix_once() {
    // Heuristic panel only: the exact solver's block decomposition
    // legitimately builds sub-dataset matrices, so it would obscure the
    // count under test.
    let specs: Vec<AlgoSpec> = paper_panel(5)
        .into_iter()
        .filter(|s| *s != AlgoSpec::Ailon)
        .collect();
    let n_specs = specs.len();
    let engine = Engine::new();
    let reports = engine.run_batch(
        &AggregationRequest::batch(wider_dataset())
            .specs(specs)
            .seed(9)
            .build(),
    );
    assert_eq!(reports.len(), n_specs);
    assert_eq!(
        engine.cache().builds(),
        1,
        "every request of the batch must share one cost-matrix build"
    );
    // A second batch over the same dataset content hits the cache too.
    let more = AggregationRequest::batch(wider_dataset())
        .spec(AlgoSpec::Borda)
        .build();
    engine.run_batch(&more);
    assert_eq!(engine.cache().builds(), 1);
    // A different dataset pays exactly one more build.
    engine.run_batch(
        &AggregationRequest::batch(paper_dataset())
            .spec(AlgoSpec::Borda)
            .spec(AlgoSpec::KwikSort)
            .build(),
    );
    assert_eq!(engine.cache().builds(), 2);
}

#[test]
fn mixed_dataset_batches_get_per_dataset_gap_references() {
    let a = paper_dataset();
    let b = wider_dataset();
    let mut requests = AggregationRequest::batch(a)
        .spec(AlgoSpec::Exact)
        .spec(AlgoSpec::BioConsert)
        .build();
    requests.extend(
        AggregationRequest::batch(b)
            .spec(AlgoSpec::BioConsert)
            .spec(AlgoSpec::RepeatChoice)
            .build(),
    );
    let reports = Engine::new().run_batch(&requests);
    // Dataset A's reference is its proven optimum (score 5)…
    assert_eq!(reports[0].score, 5);
    assert_eq!(reports[1].gap, Some(gap(reports[1].score, 5)));
    // …while dataset B's m-gap reference is the best of its own two
    // members, never dataset A's optimum.
    let b_best = reports[2].score.min(reports[3].score);
    assert_eq!(reports[2].gap, Some(gap(reports[2].score, b_best)));
    assert_eq!(reports[3].gap, Some(gap(reports[3].score, b_best)));
}

#[test]
fn batch_builder_normalizes_raw_rankings() {
    let mut universe = Universe::new();
    let raw: Vec<Ranking> = ["[{A},{B}]", "[{B},{C}]", "[{C},{A},{D}]"]
        .iter()
        .map(|t| {
            rank_aggregation_with_ties::rank_core::parse::parse_ranking_labeled(t, &mut universe)
                .unwrap()
        })
        .collect();
    let (builder, norm) =
        BatchBuilder::normalized(&raw, Normalization::Unification).expect("non-empty");
    assert_eq!(norm.dataset.n(), 4, "unification keeps A, B, C, D");
    let requests = builder.spec(AlgoSpec::BioConsert).seed(5).build();
    let report = &Engine::new().run_batch(&requests)[0];
    assert_eq!(report.ranking.n_elements(), 4);
    // Projection keeps only the intersection — which is empty here.
    assert!(BatchBuilder::normalized(&raw, Normalization::Projection).is_none());
}

// ---------------------------------------------------------------- lanes

fn big_identity_dataset(n: usize) -> Dataset {
    let forward: Vec<u32> = (0..n as u32).collect();
    let reverse: Vec<u32> = (0..n as u32).rev().collect();
    Dataset::new(vec![
        Ranking::from_bucket_indices(&forward).unwrap(),
        Ranking::from_bucket_indices(&reverse).unwrap(),
    ])
    .unwrap()
}

#[test]
fn auto_lane_flips_to_matrix_free_above_the_dense_budget() {
    // Auto stays dense at small n — the one-build batch contract above
    // depends on it — and flips once the dense matrix (8n² bytes) would
    // exceed DENSE_LANE_BUDGET_BYTES (256 MiB ⇒ n > 5792).
    let small = AggregationRequest::new(wider_dataset(), AlgoSpec::Borda);
    assert_eq!(small.resolved_lane(), KernelLane::Dense);

    let big = big_identity_dataset(6000); // 8·6000² = 288 MB > budget
    let request = AggregationRequest::new(big.clone(), AlgoSpec::Borda).with_seed(1);
    assert_eq!(request.resolved_lane(), KernelLane::MatrixFree);
    let engine = Engine::new();
    let report = engine.run(&request);
    assert_eq!(report.lane, KernelLane::MatrixFree);
    assert_eq!(
        engine.cache().builds(),
        0,
        "auto-selected matrix-free run must not build the dense matrix"
    );
    // Unsupported specs resolve dense under Auto regardless of size (the
    // request is only resolved here, not run — that build is 288 MB).
    let bio = AggregationRequest::new(big, AlgoSpec::BioConsert);
    assert_eq!(bio.resolved_lane(), KernelLane::Dense);
}

#[test]
fn explicit_lane_override_beats_auto_selection() {
    // MatrixFree forced at tiny n, where Auto would stay dense…
    let request =
        AggregationRequest::new(wider_dataset(), AlgoSpec::Mc4).with_lane(LanePolicy::MatrixFree);
    assert_eq!(request.resolved_lane(), KernelLane::MatrixFree);
    let engine = Engine::new();
    let report = engine.run(&request);
    assert_eq!(report.lane, KernelLane::MatrixFree);
    assert_eq!(engine.cache().builds(), 0);
    // …and Dense forced above the budget wins too (resolution only).
    let forced = AggregationRequest::new(big_identity_dataset(6000), AlgoSpec::Borda)
        .with_lane(LanePolicy::Dense);
    assert_eq!(forced.resolved_lane(), KernelLane::Dense);
    // A caller-supplied cost matrix pins the dense lane outright: the
    // matrix is already paid for, so MatrixFree would only discard it.
    let data = wider_dataset();
    let pinned = AggregationRequest::new(data.clone(), AlgoSpec::Borda)
        .with_cost_matrix(std::sync::Arc::new(PairTable::build(&data)))
        .with_lane(LanePolicy::MatrixFree);
    assert_eq!(pinned.resolved_lane(), KernelLane::Dense);
}

#[test]
fn lane_provenance_round_trips_through_report_json() {
    use rank_aggregation_with_ties::rank_core::parse::parse_ranking_labeled;
    use rank_aggregation_with_ties::service::proto::report_json;
    let mut universe = Universe::new();
    let raw: Vec<Ranking> = ["[{A},{B},{C}]", "[{B},{A},{C}]", "[{C},{A,B}]"]
        .iter()
        .map(|t| parse_ranking_labeled(t, &mut universe).unwrap())
        .collect();
    let norm = Normalization::Unification.apply(&raw).unwrap();
    let engine = Engine::new();
    for (lane, token) in [
        (LanePolicy::MatrixFree, "\"lane\":\"matrix_free\""),
        (LanePolicy::Dense, "\"lane\":\"dense\""),
        (LanePolicy::Auto, "\"lane\":\"dense\""), // tiny n: Auto is dense
    ] {
        let request =
            AggregationRequest::new(norm.dataset.clone(), AlgoSpec::Borda).with_lane(lane);
        let report = engine.run(&request);
        let json = report_json(&report, &norm, &universe);
        assert!(json.contains(token), "lane {lane:?} missing from {json}");
    }
}

// ------------------------------------------- batch/loop equivalence (prop)

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A concurrent `run_batch` must be report-for-report identical to a
    /// sequential loop of `run`s over the same requests.
    #[test]
    fn concurrent_batch_matches_sequential_loop(seed in 0u64..1000) {
        let data = wider_dataset();
        let specs = vec![
            AlgoSpec::BioConsert,
            AlgoSpec::Borda,
            AlgoSpec::KwikSort,
            AlgoSpec::BestOf { base: Box::new(AlgoSpec::KwikSort), runs: 6 },
            AlgoSpec::MedRank(0.5),
            AlgoSpec::RepeatChoice,
            AlgoSpec::Exact,
        ];
        let requests = AggregationRequest::batch(data)
            .specs(specs)
            .seed(seed)
            .build();
        let concurrent = Engine::new().run_batch(&requests);
        let sequential_engine = Engine::with_workers(1);
        let sequential: Vec<ConsensusReport> =
            requests.iter().map(|r| sequential_engine.run(r)).collect();
        prop_assert_eq!(concurrent.len(), sequential.len());
        for (c, s) in concurrent.iter().zip(&sequential) {
            prop_assert_eq!(&c.ranking, &s.ranking, "spec {}", c.spec);
            prop_assert_eq!(c.score, s.score);
            prop_assert_eq!(c.outcome, s.outcome);
            prop_assert_eq!(c.seed, s.seed);
        }
    }
}
