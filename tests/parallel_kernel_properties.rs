//! Property tests for the parallel consensus kernel: the interleaved
//! [`CostMatrix`] must agree with the naive `O(m·n²)` pair-counting
//! references on arbitrary tied rankings, parallel builds must be
//! bit-identical to serial ones, and parallel multi-start search must be
//! bit-identical to the sequential path for a fixed seed.

use proptest::prelude::*;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::algorithms::kwiksort::KwikSort;
use rank_aggregation_with_ties::rank_core::algorithms::BestOf;
use rank_aggregation_with_ties::rank_core::pairs::row_cost_after;
use rank_aggregation_with_ties::rank_core::CostMatrix;

/// Random ranking with ties over 0..n: bucket index per element, compacted.
fn ranking_strategy(n: usize) -> impl Strategy<Value = Ranking> {
    prop::collection::vec(0..n as u32, n).prop_map(|idx| {
        let mut used: Vec<u32> = idx.clone();
        used.sort_unstable();
        used.dedup();
        let remap: Vec<u32> = idx
            .iter()
            .map(|v| used.iter().position(|u| u == v).unwrap() as u32)
            .collect();
        Ranking::from_bucket_indices(&remap).expect("compacted indices")
    })
}

/// Random dataset of `m ∈ [1, 6]` tied rankings over `n ∈ [2, 20]` elements.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..=20, 1usize..=6).prop_flat_map(|(n, m)| {
        prop::collection::vec(ranking_strategy(n), m)
            .prop_map(|rankings| Dataset::new(rankings).expect("same support"))
    })
}

/// Naive reference: count `before` / `tied` votes for an ordered pair by
/// scanning every input ranking (the seed's `PairTable::build` semantics).
fn naive_counts(data: &Dataset, a: u32, b: u32) -> (u32, u32) {
    let (mut before, mut tied) = (0u32, 0u32);
    for r in data.rankings() {
        let pos = r.positions();
        let (pa, pb) = (pos[a as usize], pos[b as usize]);
        if pa < pb {
            before += 1;
        } else if pa == pb {
            tied += 1;
        }
    }
    (before, tied)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cost_matrix_matches_naive_pair_counts(data in dataset_strategy()) {
        let cm = CostMatrix::build(&data);
        let m = data.m() as u32;
        prop_assert_eq!(cm.m(), m);
        for a in 0..data.n() as u32 {
            let row = cm.row(Element(a));
            for b in 0..data.n() as u32 {
                if a == b {
                    continue;
                }
                let (before, tied) = naive_counts(&data, a, b);
                let (ea, eb) = (Element(a), Element(b));
                prop_assert_eq!(cm.before(ea, eb), before);
                prop_assert_eq!(cm.tied(ea, eb), tied);
                prop_assert_eq!(cm.cost_before(ea, eb), m - before);
                prop_assert_eq!(cm.cost_tied(ea, eb), m - tied);
                // Interleaved row layout agrees with the accessors, and the
                // "after" cost derives from row-local data alone.
                prop_assert_eq!(row[2 * b as usize], cm.cost_before(ea, eb));
                prop_assert_eq!(row[2 * b as usize + 1], cm.cost_tied(ea, eb));
                prop_assert_eq!(row_cost_after(row, 2 * m, b as usize), cm.cost_before(eb, ea));
            }
        }
    }

    #[test]
    fn score_matches_naive_kemeny((data, cand) in dataset_strategy().prop_flat_map(|d| {
        let n = d.n();
        (Just(d), ranking_strategy(n))
    })) {
        let cm = CostMatrix::build(&data);
        prop_assert_eq!(cm.score(&cand), kemeny_score(&cand, &data));
    }

    #[test]
    fn lower_bound_matches_naive_min_sum_and_bounds_scores((data, cand) in
        dataset_strategy().prop_flat_map(|d| {
            let n = d.n();
            (Just(d), ranking_strategy(n))
        })
    ) {
        let cm = CostMatrix::build(&data);
        let mut naive = 0u64;
        for a in 0..data.n() as u32 {
            for b in (a + 1)..data.n() as u32 {
                let (ab_before, tied) = naive_counts(&data, a, b);
                let (ba_before, _) = naive_counts(&data, b, a);
                let m = data.m() as u32;
                naive += (m - ab_before).min(m - ba_before).min(m - tied) as u64;
            }
        }
        prop_assert_eq!(cm.lower_bound(), naive);
        prop_assert!(cm.lower_bound() <= cm.score(&cand));
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial(data in dataset_strategy()) {
        let serial = CostMatrix::build_with_threads(&data, 1);
        for threads in [2usize, 4, 8] {
            prop_assert_eq!(&CostMatrix::build_with_threads(&data, threads), &serial);
        }
    }

    #[test]
    fn parallel_bioconsert_is_bit_identical_to_sequential(data in dataset_strategy(), seed in 0u64..1000) {
        let parallel = BioConsert::default();
        let sequential = BioConsert { force_sequential: true, ..BioConsert::default() };
        let rp = parallel.run(&data, &mut AlgoContext::seeded(seed));
        let rs = sequential.run(&data, &mut AlgoContext::seeded(seed));
        prop_assert_eq!(rp, rs);
    }

    #[test]
    fn parallel_best_of_is_bit_identical_to_sequential(data in dataset_strategy(), seed in 0u64..1000) {
        let runs = 6;
        let parallel = BestOf::new(Box::new(KwikSort), runs, "KwikSortMin");
        let mut sequential = BestOf::new(Box::new(KwikSort), runs, "KwikSortMin");
        sequential.force_sequential = true;
        let rp = parallel.run(&data, &mut AlgoContext::seeded(seed));
        let rs = sequential.run(&data, &mut AlgoContext::seeded(seed));
        prop_assert_eq!(rp, rs);
    }

    /// The parallel exact DFS (work-stealing subtree exploration over a
    /// shared atomic bound, DESIGN.md §11.1) must return the *same
    /// ranking* as the sequential search — not just the same score: among
    /// equally-scoring optima, the deterministic merge must pick exactly
    /// the leaf the sequential DFS-order would have kept. `threads` is
    /// pinned explicitly so real worker threads spawn even on a one-core
    /// CI host.
    #[test]
    fn parallel_exact_dfs_is_bit_identical_to_sequential(data in dataset_strategy(), seed in 0u64..1000) {
        let sequential = ExactAlgorithm {
            force_sequential: true,
            ..ExactAlgorithm::default()
        };
        let (rs, ss, ps) = sequential.solve(&data, &mut AlgoContext::seeded(seed));
        for threads in [2usize, 4, 8] {
            let parallel = ExactAlgorithm {
                threads: Some(threads),
                ..ExactAlgorithm::default()
            };
            let (rp, sp, pp) = parallel.solve(&data, &mut AlgoContext::seeded(seed));
            prop_assert_eq!(&rp, &rs, "threads {}", threads);
            prop_assert_eq!(sp, ss);
            prop_assert_eq!(pp, ps);
        }
    }

    /// Same property through the engine (the serving path): an `Exact`
    /// report under the parallel policy is bit-identical to the
    /// sequential policy, and both certify `lower_bound == score`.
    #[test]
    fn exact_reports_identical_across_policies(data in dataset_strategy(), seed in 0u64..200) {
        let engine = Engine::new();
        let par = engine.run(
            &AggregationRequest::new(data.clone(), AlgoSpec::Exact).with_seed(seed),
        );
        let seq = engine.run(
            &AggregationRequest::new(data, AlgoSpec::Exact)
                .with_seed(seed)
                .with_policy(ExecPolicy::sequential()),
        );
        prop_assert_eq!(&par.ranking, &seq.ranking);
        prop_assert_eq!(par.score, seq.score);
        prop_assert_eq!(par.outcome, Outcome::Optimal);
        prop_assert_eq!(par.lower_bound, Some(par.score));
        prop_assert_eq!(seq.lower_bound, Some(seq.score));
    }
}
