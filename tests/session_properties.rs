//! Property tests for live dataset sessions (DESIGN.md §13): any edit
//! sequence leaves the delta-patched cost matrix bit-identical to a cold
//! rebuild from the current rankings, refused edits change nothing, and
//! warm-started re-solves never score worse than the run that seeded
//! them (and never corrupt exactness).

use proptest::prelude::*;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::session::DatasetSession;
use rank_aggregation_with_ties::rank_core::CostMatrix;

fn ranking_strategy(n: usize) -> impl Strategy<Value = Ranking> {
    prop::collection::vec(0..n as u32, n).prop_map(|idx| {
        let mut used: Vec<u32> = idx.clone();
        used.sort_unstable();
        used.dedup();
        let remap: Vec<u32> = idx
            .iter()
            .map(|v| used.iter().position(|u| u == v).unwrap() as u32)
            .collect();
        Ranking::from_bucket_indices(&remap).expect("compacted")
    })
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..=10, 2usize..=5).prop_flat_map(|(n, m)| {
        prop::collection::vec(ranking_strategy(n), m)
            .prop_map(|rs| Dataset::new(rs).expect("dense"))
    })
}

/// One scripted edit: the kind selector, a raw index (reduced modulo
/// `m + 1` at apply time so some indices are deliberately out of range),
/// and a ranking over up to 14 elements (larger than the base dataset,
/// so adds exercise universe growth).
fn edit_script_strategy() -> impl Strategy<Value = Vec<(u8, usize, Ranking)>> {
    (1usize..12).prop_flat_map(|len| {
        prop::collection::vec(
            (
                0u8..3,
                0usize..1_000_000,
                (1usize..=14).prop_flat_map(ranking_strategy),
            ),
            len,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole's core invariant: after every edit — add, remove,
    /// replace, including refused ones — the session's incrementally
    /// patched matrix equals `CostMatrix::build` over its current
    /// rankings, bit for bit. The O(n²)-per-edit path and the
    /// O(n²·m)-rebuild path may never drift.
    #[test]
    fn patched_matrix_is_bit_identical_to_cold_rebuild(
        data in dataset_strategy(),
        script in edit_script_strategy(),
    ) {
        let mut session = DatasetSession::new(data);
        for (kind, raw_index, ranking) in script {
            let version_before = session.version();
            let snapshot = session.matrix().clone();
            let index = raw_index % (session.m() + 1);
            let result = match kind {
                0 => session.add_ranking(ranking),
                1 => session.remove_ranking(index),
                _ => session.replace_ranking(index, ranking),
            };
            match result {
                Ok(version) => prop_assert_eq!(version, version_before + 1),
                Err(_) => {
                    // A refused edit is a full no-op: same matrix, same
                    // version.
                    prop_assert_eq!(session.matrix(), &snapshot);
                    prop_assert_eq!(session.version(), version_before);
                }
            }
            let cold = CostMatrix::build(&session.dataset());
            prop_assert_eq!(session.matrix(), &cold,
                "delta-patched matrix drifted from the cold rebuild");
            prop_assert_eq!(session.m(), session.dataset().m());
            prop_assert_eq!(session.n(), session.dataset().n());
        }
    }

    /// Warm ≤ cold at equal budget (both unbudgeted here, running to
    /// convergence): the second resolve starts from the first one's
    /// recorded consensus, and a monotone local search can only keep or
    /// improve that score. The reported score must also stay honest —
    /// equal to the ranking's actual Kemeny score.
    #[test]
    fn warm_resolve_never_scores_worse_than_the_run_that_seeded_it(
        data in dataset_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let engine = Engine::new();
        let spec = AlgoSpec::parse("BioConsert").expect("registered");
        let mut session = DatasetSession::new(data);
        let cold = session.resolve(&engine, spec.clone(), seed, None);
        let warm = session.resolve(&engine, spec, seed, None);
        prop_assert!(warm.score <= cold.score,
            "warm-started re-solve regressed: {} > {}", warm.score, cold.score);
        prop_assert_eq!(warm.score, kemeny_score(&warm.ranking, &session.dataset()));
    }

    /// A warm hint survives an edit (padded into the grown universe when
    /// the edit introduced elements) and the re-solve still reports an
    /// honest score over the *edited* dataset.
    #[test]
    fn warm_resolve_after_an_edit_stays_honest(
        data in dataset_strategy(),
        added in (1usize..=12).prop_flat_map(ranking_strategy),
        seed in 0u64..1_000_000,
    ) {
        let engine = Engine::new();
        let spec = AlgoSpec::parse("BioConsert").expect("registered");
        let mut session = DatasetSession::new(data);
        session.resolve(&engine, spec.clone(), seed, None);
        session.add_ranking(added).expect("add is always accepted");
        let report = session.resolve(&engine, spec, seed, None);
        prop_assert_eq!(report.score, kemeny_score(&report.ranking, &session.dataset()));
    }
}

proptest! {
    // Exact solves are pricier; fewer, smaller cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Warm starts prune, they must never change the answer: after an
    /// edit, a warm-started Exact lands on the same optimal score as a
    /// cold Exact on the identical dataset.
    #[test]
    fn warm_started_exact_matches_cold_exact(
        data in (2usize..=7, 2usize..=4).prop_flat_map(|(n, m)| {
            prop::collection::vec(ranking_strategy(n), m)
                .prop_map(|rs| Dataset::new(rs).expect("dense"))
        }),
        added in (1usize..=8).prop_flat_map(ranking_strategy),
        seed in 0u64..1_000_000,
    ) {
        let engine = Engine::new();
        let mut session = DatasetSession::new(data);
        session.resolve(&engine, AlgoSpec::Exact, seed, None);
        session.add_ranking(added).expect("add is always accepted");
        let warm = session.resolve(&engine, AlgoSpec::Exact, seed, None);
        let cold = engine.run(
            &AggregationRequest::new(session.dataset(), AlgoSpec::Exact).with_seed(seed),
        );
        prop_assert_eq!(warm.score, cold.score,
            "a warm upper bound changed the proven optimum");
        prop_assert_eq!(warm.outcome, Outcome::Optimal);
    }
}
