//! Crash-safety tests for the durable aggregation service (DESIGN.md
//! §12): journal replay and corruption tolerance, restart recovery of
//! finished and interrupted jobs, idempotent resubmission across a
//! restart, degraded mode under fsync failure, and the retrying client
//! against injected connection loss.
//!
//! A "crash" here is a fabricated journal directory — exactly the bytes
//! an interrupted `rawt serve --journal` leaves behind — plus fault
//! hooks ([`FaultPlan`]) for torn writes and dropped connections. The CI
//! smoke test covers the real-SIGKILL variant of the same story against
//! the actual binary.

use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::rank_core::parse::parse_dataset_lines;
use rank_aggregation_with_ties::rank_core::Universe;
use service::client::{Client, ClientError, RetryNotice, RetryPolicy};
use service::fault::FaultPlan;
use service::journal::{frame_line, FsyncPolicy, Journal};
use service::json::Json;
use service::proto::JobSubmission;
use service::server::{Server, ServerConfig, ShutdownHandle};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const PAPER_EXAMPLE: &str =
    "# the paper's §2.2 example\n[{A},{D},{B,C}]\n[{A},{B,C},{D}]\n[{D},{A,C},{B}]\n";

/// A fresh scratch directory for one test's journal.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rawt-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bind an in-process server on an ephemeral port and serve it on a
/// background thread.
fn start_server(config: ServerConfig) -> (Client, ShutdownHandle) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_handle().expect("shutdown handle");
    std::thread::spawn(move || server.serve());
    (Client::new(&addr), shutdown)
}

fn journaled_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        journal_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

/// A quick retry policy so tests exercising backoff stay fast.
fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(100),
        seed: 7,
    }
}

/// The reference report for (dataset, spec, seed): an uninterrupted
/// in-process engine run, the thing recovery must reproduce.
fn local_reference(spec: AlgoSpec, seed: u64) -> ConsensusReport {
    let mut universe = Universe::new();
    let raw = parse_dataset_lines(PAPER_EXAMPLE, &mut universe).expect("parse");
    let norm = Normalization::Unification.apply(&raw).expect("normalize");
    Engine::new().run(&AggregationRequest::new(norm.dataset.clone(), spec).with_seed(seed))
}

// -------------------------------------------------- journal corruption

/// Satellite: every way a journal file can be damaged must replay into
/// "whatever prefix was intact", never a panic or a hard error.
#[test]
fn corrupt_journals_replay_without_panicking() {
    let submission = JobSubmission {
        algo: Some("Exact".into()),
        ..JobSubmission::new(PAPER_EXAMPLE)
    };
    let submit_record = frame_line(&format!(
        "{{\"rec\":\"submit\",\"id\":0,\"segment\":0,\"submission\":{}}}",
        submission.to_json()
    ));
    let event = frame_line(r#"{"event":"started","spec":"Exact","seed":42}"#);
    // (tag, file contents, submissions recovered, events kept, torn lines)
    let cases: [(&str, String, usize, usize, usize); 5] = [
        (
            "truncated-tail",
            // The last line lost its tail mid-write(2): bad CRC.
            format!("{submit_record}{}", &event[..event.len() / 2]),
            1,
            0,
            1,
        ),
        (
            "mid-file-garbage",
            // A corrupt line invalidates everything after it (the replay
            // cannot trust later offsets), keeping the prefix.
            format!("{submit_record}{event}not json at all\n{event}"),
            1,
            1,
            2,
        ),
        ("empty-file", String::new(), 0, 0, 0),
        ("submission-only", submit_record.clone(), 1, 0, 0),
        (
            "garbage-before-submission",
            // No valid submission record: the whole file is unusable
            // (both lines count as dropped — nothing after a corrupt
            // line can be trusted).
            format!("deadbeef nope\n{submit_record}"),
            0,
            0,
            2,
        ),
    ];
    for (tag, contents, want_jobs, want_events, want_dropped) in cases {
        let dir = scratch_dir(&format!("corrupt-{tag}"));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("job-0-s0.ndjson"), contents).expect("write");
        let replay = Journal::open(&dir, FsyncPolicy::Never)
            .expect("open")
            .replay()
            .unwrap_or_else(|e| panic!("{tag}: replay must not error: {e}"));
        assert_eq!(replay.jobs.len(), want_jobs, "{tag}: recovered jobs");
        if let Some(job) = replay.jobs.first() {
            assert_eq!(job.events.len(), want_events, "{tag}: surviving events");
            assert!(job.finished.is_none(), "{tag}: no terminal record survived");
        }
        assert_eq!(replay.dropped_lines, want_dropped, "{tag}: dropped lines");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A server must boot (and serve) on a journal directory containing only
/// damaged files — recovery degrades to "nothing to recover", not a
/// refusal to start.
#[test]
fn server_boots_on_a_journal_of_garbage() {
    let dir = scratch_dir("boot-garbage");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("job-0-s0.ndjson"), "").expect("write");
    std::fs::write(dir.join("job-1-s0.ndjson"), "complete nonsense\n").expect("write");
    std::fs::write(dir.join("unrelated.txt"), "not a journal file").expect("write");
    let (client, shutdown) = start_server(journaled_config(&dir));
    let health = client.healthz().expect("healthz");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("journal").and_then(Json::as_str), Some("active"));
    // And it still takes fresh work.
    let job = client
        .submit(&JobSubmission {
            algo: Some("Exact".into()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("submit");
    let done = client.wait(job.id).expect("wait");
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    shutdown.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------- restart recovery

/// Tentpole, interrupted half: a journal holding a submission with no
/// terminal record (what SIGKILL mid-job leaves) is re-admitted on boot
/// and converges to the same report as an uninterrupted run — ranking,
/// score, outcome, and incumbent-trace scores all identical.
#[test]
fn interrupted_job_recovers_bit_identical_to_uninterrupted_run() {
    let dir = scratch_dir("readmit");
    // Fabricate the crash image through the journal API itself: a
    // submission record, a couple of events, no terminal line.
    {
        let journal = Journal::open(&dir, FsyncPolicy::Always).expect("open");
        let submission = JobSubmission {
            algo: Some("Exact".into()),
            seed: 99,
            idempotency_key: Some("crashed-submit".into()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        };
        let mut writer = journal
            .begin_job(0, 0, &submission.to_json())
            .expect("begin");
        writer.append_event(r#"{"event":"started","spec":"Exact","seed":99}"#);
        // Dropped without finish(): the crash.
    }
    let reference = local_reference(AlgoSpec::Exact, 99);
    let (client, shutdown) = start_server(journaled_config(&dir));
    let status = client.wait(0).expect("recovered job must finish");
    let report = status.get("report").expect("report");
    assert_eq!(
        report.get("score").and_then(Json::as_u64),
        Some(reference.score),
        "recovered score must match the uninterrupted run"
    );
    assert_eq!(
        report.get("outcome").and_then(Json::as_str),
        Some(reference.outcome.to_string().as_str())
    );
    let trace_scores: Vec<u64> = report
        .get("trace")
        .and_then(Json::as_array)
        .expect("trace")
        .iter()
        .filter_map(|t| t.get("score").and_then(Json::as_u64))
        .collect();
    let reference_scores: Vec<u64> = reference.trace.iter().map(|t| t.score).collect();
    assert_eq!(
        trace_scores, reference_scores,
        "incumbent trajectory must replay identically"
    );
    // The re-run journaled itself into the next segment, terminally.
    assert!(dir.join("job-0-s1.ndjson").exists(), "re-run segment");
    // …and an idempotent retry of the original (crashed) POST reattaches
    // to the recovered job instead of duplicating it.
    let retry = client
        .submit(&JobSubmission {
            algo: Some("Exact".into()),
            seed: 99,
            idempotency_key: Some("crashed-submit".into()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("idempotent resubmit");
    assert!(retry.deduplicated, "must match the journaled key");
    assert_eq!(retry.id, 0, "must be the recovered job, not a new one");
    shutdown.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Tentpole, finished half: a job that completed before the crash is
/// servable after restart with its report bytes and event replay intact
/// — no re-execution.
#[test]
fn finished_jobs_survive_restart_byte_for_byte() {
    let dir = scratch_dir("finished");
    let (client, shutdown) = start_server(journaled_config(&dir));
    let job = client
        .submit(&JobSubmission {
            algo: Some("BioConsert".into()),
            seed: 7,
            idempotency_key: Some("finished-once".into()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("submit");
    client.wait(job.id).expect("finish");
    let before_raw = client.status_raw(job.id).expect("status before restart");
    let before_events: Vec<String> = collect_replay_lines(&client, job.id);
    shutdown.shutdown();

    let (client, shutdown) = start_server(journaled_config(&dir));
    let after_raw = client.status_raw(job.id).expect("status after restart");
    assert_eq!(
        splice_report(&before_raw),
        splice_report(&after_raw),
        "the served report must be the original bytes, not a re-serialization"
    );
    let after = client.status(job.id).expect("status");
    assert_eq!(after.get("state").and_then(Json::as_str), Some("done"));
    let after_events = collect_replay_lines(&client, job.id);
    assert_eq!(before_events, after_events, "event replay must survive");
    // Same idempotency key still deduplicates after the restart.
    let retry = client
        .submit(&JobSubmission {
            algo: Some("BioConsert".into()),
            seed: 7,
            idempotency_key: Some("finished-once".into()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("resubmit");
    assert!(retry.deduplicated);
    assert_eq!(retry.id, job.id);
    // And fresh ids continue above the recovered ones.
    let fresh = client
        .submit(&JobSubmission {
            algo: Some("Exact".into()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("fresh submit");
    assert!(
        fresh.id > job.id,
        "fresh ids must not collide with recovered ones"
    );
    assert!(!fresh.deduplicated);
    shutdown.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn terminal record (crash mid-`write(2)` of the final line) must
/// demote the job to "interrupted": the CRC framing rejects the tail and
/// the restart re-runs the job to the same answer.
#[test]
fn torn_terminal_record_triggers_rerun_to_the_same_score() {
    let dir = scratch_dir("torn");
    let config = ServerConfig {
        faults: Arc::new(FaultPlan::none().with_torn_terminal()),
        ..journaled_config(&dir)
    };
    let (client, shutdown) = start_server(config);
    let job = client
        .submit(&JobSubmission {
            algo: Some("Exact".into()),
            seed: 5,
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("submit");
    let finished = client.wait(job.id).expect("finish in memory");
    let score_before = report_score(&finished);
    shutdown.shutdown();

    // Restart on the torn journal: the job must come back as interrupted
    // work and re-run to the identical score.
    let (client, shutdown) = start_server(journaled_config(&dir));
    let recovered = client.wait(job.id).expect("re-run after torn terminal");
    assert_eq!(report_score(&recovered), score_before);
    shutdown.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------- degraded mode

/// An fsync failure must not take the server down: the journal turns
/// itself off, `/healthz` flips to "degraded", and jobs keep running
/// in-memory exactly as an unjournaled server would.
#[test]
fn fsync_failure_degrades_to_in_memory_operation() {
    let dir = scratch_dir("degraded");
    let config = ServerConfig {
        journal_fsync: FsyncPolicy::Always,
        faults: Arc::new(FaultPlan::none().with_fsync_error()),
        ..journaled_config(&dir)
    };
    let (client, shutdown) = start_server(config);
    let job = client
        .submit(&JobSubmission {
            algo: Some("Exact".into()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("submit survives the journal failure");
    let done = client.wait(job.id).expect("job still completes");
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    let health = client.healthz().expect("healthz");
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded"),
        "health must advertise the lost durability"
    );
    assert_eq!(
        health.get("journal").and_then(Json::as_str),
        Some("degraded")
    );
    shutdown.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------------ client retries

/// The retrying client against injected connection drops: a submit whose
/// connection is severed before the response retries (surfacing a
/// notice) and lands exactly one job thanks to its idempotency key.
#[test]
fn dropped_connections_are_retried_without_duplicating_the_job() {
    let config = ServerConfig {
        // Drop every 2nd accepted connection unanswered.
        faults: Arc::new(FaultPlan::none().with_drop_accept(2)),
        ..ServerConfig::default()
    };
    let (warmup, shutdown) = start_server(config);
    // Connection #1: burn it on healthz so the submit lands on #2, the
    // dropped one — making the retry deterministic. The submit must come
    // from a second client: the first one pools its healthz connection
    // and would reuse it, never touching the fault.
    warmup.healthz().expect("healthz on connection 1");
    let client = Client::new(warmup.addr());
    let mut notices: Vec<RetryNotice> = Vec::new();
    let job = client
        .submit_with_retry(
            &JobSubmission {
                algo: Some("Exact".into()),
                idempotency_key: Some("retry-once".into()),
                ..JobSubmission::new(PAPER_EXAMPLE)
            },
            &fast_retries(),
            |n| notices.push(n.clone()),
        )
        .expect("retry must eventually land");
    assert!(
        !notices.is_empty(),
        "the dropped connection must surface a retry notice"
    );
    assert_eq!(notices[0].reason, "server unreachable");
    assert!(!job.deduplicated, "first landing is a fresh job");
    // The reconnecting follower delivers the stream exactly once even
    // though every other connection dies.
    let kinds: Vec<String> = client
        .follow_events(job.id, fast_retries(), |_| {})
        .map(|e| {
            e.expect("followed event")
                .get("event")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned()
        })
        .filter(|k| k != "heartbeat")
        .collect();
    assert_eq!(
        kinds.iter().filter(|k| k.as_str() == "started").count(),
        1,
        "no duplicated replay lines across reconnects: {kinds:?}"
    );
    assert_eq!(kinds.last().map(String::as_str), Some("finished"));
    // A later retry of the same key deduplicates.
    let again = client
        .submit_with_retry(
            &JobSubmission {
                algo: Some("Exact".into()),
                idempotency_key: Some("retry-once".into()),
                ..JobSubmission::new(PAPER_EXAMPLE)
            },
            &fast_retries(),
            |_| {},
        )
        .expect("idempotent retry");
    assert!(again.deduplicated);
    assert_eq!(again.id, job.id);
    shutdown.shutdown();
}

/// A server that is down stays down: retries against nothing exhaust the
/// policy and return the transport error instead of hanging.
#[test]
fn retries_exhaust_cleanly_when_no_server_answers() {
    // Bind-then-drop guarantees a port nothing listens on.
    let port = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        listener.local_addr().expect("probe addr").port()
    };
    let client = Client::new(&format!("127.0.0.1:{port}"));
    let policy = RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(20),
        seed: 1,
    };
    let mut notices = 0;
    let err = client
        .submit_with_retry(&JobSubmission::new(PAPER_EXAMPLE), &policy, |_| {
            notices += 1
        })
        .expect_err("nothing is listening");
    assert!(matches!(err, ClientError::Transport(_)), "got {err}");
    assert_eq!(notices, 2, "max_attempts 3 = two retries after the first");
}

// ------------------------------------------------------------- helpers

/// All non-heartbeat lines of a *finished* job's event replay, as text.
fn collect_replay_lines(client: &Client, id: u64) -> Vec<String> {
    client
        .events(id)
        .expect("event stream")
        .map(|e| e.expect("event").to_string())
        .filter(|line| !line.contains("\"heartbeat\""))
        .collect()
}

/// The raw `"report":{…}` slice of a status document (byte-exact).
fn splice_report(raw: &str) -> &str {
    let i = raw.rfind("\"report\":").expect("status carries a report");
    &raw[i..raw.len() - 1]
}

fn report_score(status: &Json) -> u64 {
    status
        .get("report")
        .and_then(|r| r.get("score"))
        .and_then(Json::as_u64)
        .expect("report score")
}
