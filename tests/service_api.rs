//! End-to-end tests of the network aggregation service (DESIGN.md §10):
//! wire-level parity with the in-process engine, streamed incumbent
//! ordering, cancellation over the wire, load shedding, and the
//! malformed-input paths that must 400 instead of panicking a thread.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::ragen::UniformSampler;
use rank_aggregation_with_ties::rank_core::parse::parse_dataset_lines;
use rank_aggregation_with_ties::rank_core::Universe;
use service::client::{Client, ClientError};
use service::http::{write_request, ClientResponse};
use service::json::Json;
use service::proto::{ranking_json, JobSubmission};
use service::server::{Server, ServerConfig, ShutdownHandle};
use std::net::TcpStream;
use std::time::Duration;

/// Bind an in-process server on an ephemeral port and serve it on a
/// background thread.
fn start_server(config: ServerConfig) -> (Client, ShutdownHandle, String) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_handle().expect("shutdown handle");
    std::thread::spawn(move || server.serve());
    (Client::new(&addr), shutdown, addr)
}

fn default_server() -> (Client, ShutdownHandle, String) {
    start_server(ServerConfig::default())
}

const PAPER_EXAMPLE: &str =
    "# the paper's §2.2 example\n[{A},{D},{B,C}]\n[{A},{B,C},{D}]\n[{D},{A,C},{B}]\n";

/// A dataset big enough that BioConsert cannot finish before a cancel
/// issued right after its first incumbent lands, serialized to the wire
/// text format.
fn big_dataset_text(n: usize, m: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = UniformSampler::new(n).sample_dataset(n, m, &mut rng);
    let mut text = String::new();
    for r in data.rankings() {
        text.push_str(&r.to_string());
        text.push('\n');
    }
    text
}

/// Send a raw request body (possibly malformed) and return status + body.
fn raw_post(addr: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_request(
        &mut stream,
        "POST",
        path,
        addr,
        Some(("application/json", body.as_bytes())),
        false,
    )
    .expect("send");
    let response = ClientResponse::read(stream).expect("response head");
    let status = response.status;
    (status, response.body_string().expect("response body"))
}

// ------------------------------------------------------------ wire parity

/// The acceptance bar: a remote aggregation is bit-identical to the
/// in-process engine for the same dataset/spec/seed — ranking, score,
/// and trace (scores; timings are wall clock).
#[test]
fn remote_report_is_bit_identical_to_local_engine_run() {
    let (client, shutdown, _) = default_server();
    for (spec_text, spec) in [
        ("BioConsert", AlgoSpec::BioConsert),
        ("Exact", AlgoSpec::Exact),
        (
            "BestOf(KwikSort,7)",
            AlgoSpec::BestOf {
                base: Box::new(AlgoSpec::KwikSort),
                runs: 7,
            },
        ),
    ] {
        // Local: parse + normalize exactly as the server does.
        let mut universe = Universe::new();
        let raw = parse_dataset_lines(PAPER_EXAMPLE, &mut universe).expect("parse");
        let norm = Normalization::Unification.apply(&raw).expect("normalize");
        let local = Engine::new()
            .run(&AggregationRequest::new(norm.dataset.clone(), spec.clone()).with_seed(99));

        // Remote: same text over the wire.
        let job = client
            .submit(&JobSubmission {
                algo: Some(spec_text.to_owned()),
                seed: 99,
                ..JobSubmission::new(PAPER_EXAMPLE)
            })
            .expect("submit");
        let status = client.wait(job.id).expect("wait");
        let report = status.get("report").expect("report present");

        assert_eq!(
            report.get("score").and_then(Json::as_u64),
            Some(local.score),
            "{spec_text}: scores must match"
        );
        assert_eq!(
            report.get("outcome").and_then(Json::as_str),
            Some(local.outcome.to_string().as_str()),
            "{spec_text}: outcomes must match"
        );
        assert_eq!(
            report.get("seed").and_then(Json::as_u64),
            Some(99),
            "{spec_text}: seed provenance"
        );
        // Ranking: compare through the shared serializer, as JSON trees.
        let local_ranking =
            Json::parse(&ranking_json(&norm.denormalize(&local.ranking), &universe))
                .expect("local ranking serializes");
        assert_eq!(
            report.get("ranking"),
            Some(&local_ranking),
            "{spec_text}: rankings must match"
        );
        // Trace: the same strictly-decreasing score sequence.
        let remote_scores: Vec<u64> = report
            .get("trace")
            .and_then(Json::as_array)
            .expect("trace present")
            .iter()
            .filter_map(|p| p.get("score").and_then(Json::as_u64))
            .collect();
        let local_scores: Vec<u64> = local.trace.iter().map(|p| p.score).collect();
        assert_eq!(
            remote_scores, local_scores,
            "{spec_text}: traces must match"
        );
    }
    shutdown.shutdown();
}

// --------------------------------------------------------- event streaming

#[test]
fn streamed_incumbents_strictly_decrease_and_end_at_the_report_score() {
    let (client, shutdown, _) = default_server();
    let job = client
        .submit(&JobSubmission {
            algo: Some("BioConsert".to_owned()),
            ..JobSubmission::new(big_dataset_text(60, 8, 3))
        })
        .expect("submit");
    let events: Vec<Json> = client
        .events(job.id)
        .expect("stream")
        .collect::<Result<_, _>>()
        .expect("well-formed events");
    let kind = |e: &Json| e.get("event").and_then(Json::as_str).unwrap().to_owned();
    assert_eq!(kind(&events[0]), "started", "{events:?}");
    assert_eq!(kind(events.last().unwrap()), "finished", "{events:?}");
    let incumbents: Vec<u64> = events
        .iter()
        .filter(|e| kind(e) == "incumbent")
        .map(|e| e.get("score").and_then(Json::as_u64).unwrap())
        .collect();
    assert!(!incumbents.is_empty(), "at least the final incumbent");
    assert!(
        incumbents.windows(2).all(|w| w[1] < w[0]),
        "incumbent scores must strictly decrease: {incumbents:?}"
    );
    let report_score = client
        .status(job.id)
        .expect("status")
        .get("report")
        .and_then(|r| r.get("score"))
        .and_then(Json::as_u64)
        .expect("final score");
    assert_eq!(
        *incumbents.last().unwrap(),
        report_score,
        "the last streamed incumbent is the reported consensus"
    );
    // The replay log serves late subscribers identically.
    let replay: Vec<Json> = client
        .events(job.id)
        .expect("replay stream")
        .collect::<Result<_, _>>()
        .expect("well-formed replay");
    assert_eq!(replay, events, "replay must match the live stream");
    shutdown.shutdown();
}

/// The lower-bound channel over the wire (DESIGN.md §11.2): an exact job's
/// NDJSON stream carries strictly increasing `lower_bound` events that
/// never exceed any incumbent, `gap` fields equal `score − lower_bound`,
/// and a proved-optimal job ends with `lower_bound == score` in both the
/// stream and the final report.
#[test]
fn exact_jobs_stream_certified_lower_bounds_over_the_wire() {
    let (client, shutdown, _) = default_server();
    let job = client
        .submit(&JobSubmission {
            algo: Some("Exact".to_owned()),
            seed: 5,
            ..JobSubmission::new(big_dataset_text(14, 4, 31))
        })
        .expect("submit");
    let events: Vec<Json> = client
        .events(job.id)
        .expect("stream")
        .collect::<Result<_, _>>()
        .expect("well-formed events");
    let mut bounds: Vec<u64> = Vec::new();
    let mut scores: Vec<u64> = Vec::new();
    let mut last_bound: Option<u64> = None;
    let mut best_score: Option<u64> = None;
    for event in &events {
        match event.get("event").and_then(Json::as_str) {
            Some("incumbent") => {
                let score = event.get("score").and_then(Json::as_u64).unwrap();
                assert_eq!(
                    event.get("gap").and_then(Json::as_u64),
                    last_bound.map(|lb| score - lb),
                    "wire incumbent gap must be score − lower_bound: {event}"
                );
                best_score = Some(score);
                scores.push(score);
            }
            Some("lower_bound") => {
                let lb = event.get("lower_bound").and_then(Json::as_u64).unwrap();
                assert!(
                    last_bound.is_none_or(|prev| prev < lb),
                    "wire bounds must strictly increase: {events:?}"
                );
                assert_eq!(
                    event.get("gap").and_then(Json::as_u64),
                    best_score.map(|s| s - lb),
                    "wire bound gap must be best score − lower_bound: {event}"
                );
                last_bound = Some(lb);
                bounds.push(lb);
            }
            _ => {}
        }
    }
    assert!(
        !bounds.is_empty(),
        "exact jobs must stream bounds over the wire"
    );
    assert!(
        bounds.iter().max() <= scores.iter().min(),
        "a wire bound exceeded an incumbent: {bounds:?} vs {scores:?}"
    );
    let status = client.status(job.id).expect("status");
    let report = status.get("report").expect("report present");
    assert_eq!(
        report.get("outcome").and_then(Json::as_str),
        Some("optimal")
    );
    let score = report.get("score").and_then(Json::as_u64).unwrap();
    assert_eq!(
        report.get("lower_bound").and_then(Json::as_u64),
        Some(score),
        "a proved-optimal wire report carries lower_bound == score"
    );
    assert_eq!(bounds.last(), Some(&score), "the stream ends certified");
    // The status document's live trace carries the bound per point too.
    let trace_bounds: Vec<Option<u64>> = status
        .get("trace")
        .and_then(Json::as_array)
        .expect("live trace")
        .iter()
        .map(|p| p.get("lower_bound").and_then(Json::as_u64))
        .collect();
    assert!(
        trace_bounds
            .windows(2)
            .all(|w| w[0].unwrap_or(0) <= w[1].unwrap_or(u64::MAX)),
        "trace bounds must be non-decreasing: {trace_bounds:?}"
    );
    shutdown.shutdown();
}

// ------------------------------------------------------------ cancellation

#[test]
fn delete_mid_run_cancels_with_the_last_streamed_incumbent() {
    let (client, shutdown, _) = default_server();
    let job = client
        .submit(&JobSubmission {
            algo: Some("BioConsert".to_owned()),
            ..JobSubmission::new(big_dataset_text(200, 20, 9))
        })
        .expect("submit");
    let mut last_incumbent = None;
    let mut finished_outcome = None;
    for event in client.events(job.id).expect("stream") {
        let event = event.expect("well-formed event");
        match event.get("event").and_then(Json::as_str) {
            Some("incumbent") => {
                let score = event.get("score").and_then(Json::as_u64).unwrap();
                if last_incumbent.is_none() {
                    // First incumbent: cancel over the wire, keep draining.
                    let ack = client.cancel(job.id).expect("cancel");
                    assert_eq!(ack.get("cancelling").and_then(Json::as_bool), Some(true));
                }
                last_incumbent = Some(score);
            }
            Some("finished") => {
                finished_outcome = event
                    .get("outcome")
                    .and_then(Json::as_str)
                    .map(str::to_owned);
            }
            _ => {}
        }
    }
    assert_eq!(
        finished_outcome.as_deref(),
        Some("cancelled"),
        "a cancel at the first of many sweeps must win"
    );
    let status = client.status(job.id).expect("status");
    let report = status.get("report").expect("report present");
    assert_eq!(
        report.get("outcome").and_then(Json::as_str),
        Some("cancelled")
    );
    assert_eq!(
        report.get("score").and_then(Json::as_u64),
        last_incumbent,
        "the cancelled report's score equals its last streamed incumbent"
    );
    // Cancelling an already-finished job is a harmless no-op.
    assert!(client.cancel(job.id).is_ok());
    shutdown.shutdown();
}

// ------------------------------------------------------------ load shedding

#[test]
fn saturating_the_admission_queue_sheds_with_429_without_dropping_running_jobs() {
    let (client, shutdown, _) = start_server(ServerConfig {
        max_jobs: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    // Occupy the single worker…
    let running = client
        .submit(&JobSubmission {
            algo: Some("BioConsert".to_owned()),
            ..JobSubmission::new(big_dataset_text(200, 20, 5))
        })
        .expect("submit the long job");
    loop {
        let state = client.status(running.id).expect("status");
        if state.get("state").and_then(Json::as_str) == Some("running") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // …fill the queue…
    let queued = client
        .submit(&JobSubmission {
            algo: Some("Exact".to_owned()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("queue has room for one");
    // …and watch the third submission shed.
    let shed = client.submit(&JobSubmission {
        algo: Some("Borda".to_owned()),
        ..JobSubmission::new(PAPER_EXAMPLE)
    });
    match shed {
        Err(ClientError::Status {
            status,
            body,
            retry_after_secs,
        }) => {
            assert_eq!(status, 429, "{body}");
            assert!(
                retry_after_secs.is_some_and(|s| s >= 1),
                "Retry-After header expected, got {retry_after_secs:?}"
            );
            assert!(body.contains("queue full"), "{body}");
        }
        other => panic!("expected a 429 shed, got {other:?}"),
    }
    // The running job was untouched: cancel it and it finishes its
    // protocol (cancelled, with a valid report); the queued job then runs.
    client.cancel(running.id).expect("cancel the long job");
    let long_status = client.wait(running.id).expect("long job resolves");
    assert_eq!(
        long_status
            .get("report")
            .and_then(|r| r.get("outcome"))
            .and_then(Json::as_str),
        Some("cancelled")
    );
    let queued_status = client.wait(queued.id).expect("queued job resolves");
    assert_eq!(
        queued_status
            .get("report")
            .and_then(|r| r.get("score"))
            .and_then(Json::as_u64),
        Some(5),
        "the queued job ran to completion after the worker freed up"
    );
    shutdown.shutdown();
}

// -------------------------------------------------------- malformed inputs

#[test]
fn malformed_submissions_get_typed_400s_and_never_kill_the_server() {
    let (client, shutdown, addr) = default_server();
    let cases: &[(&str, &str)] = &[
        // Unknown algorithm: the registry's did-you-mean flows through.
        (
            r#"{"dataset":"[{A},{B}]\n[{B},{A}]","algo":"KwikSrt"}"#,
            "did you mean",
        ),
        // Registered head, bad arguments.
        (
            r#"{"dataset":"[{A},{B}]","algo":"MedRank(2.5)"}"#,
            "outside [0,1]",
        ),
        // Zero, negative, and Duration-overflowing budgets.
        (r#"{"dataset":"[{A},{B}]","budget_secs":0}"#, "positive"),
        (r#"{"dataset":"[{A},{B}]","budget_secs":-1.5}"#, "positive"),
        (
            r#"{"dataset":"[{A},{B}]","budget_secs":1e20}"#,
            "out of range",
        ),
        // Truncated dataset body (mid-ranking).
        (r#"{"dataset":"[{A},{B"}"#, "dataset:"),
        // Truncated JSON document.
        (r#"{"dataset":"[{A},{B}]""#, "request body"),
        // No rankings at all.
        ("{\"dataset\":\"# only a comment\\n\"}", "no rankings"),
        // Structurally invalid ranking (duplicate element).
        (r#"{"dataset":"[{A},{A}]"}"#, "dataset:"),
        // Over the size cap (Ailon's n ≤ 45 bound, paper §6).
        // Built below because it needs a generated dataset.
    ];
    for (body, needle) in cases {
        let (status, response) = raw_post(&addr, "/v1/jobs", body);
        assert_eq!(status, 400, "{body} → {response}");
        assert!(
            response.contains(needle),
            "{body}: response {response:?} should mention {needle:?}"
        );
    }
    // Algorithm size cap: Ailon refuses n > 45 with a clear 400.
    let over_cap = JobSubmission {
        algo: Some("Ailon".to_owned()),
        ..JobSubmission::new(big_dataset_text(60, 4, 1))
    };
    let (status, response) = raw_post(&addr, "/v1/jobs", &over_cap.to_json());
    assert_eq!(status, 400, "{response}");
    assert!(response.contains("at most n = 45"), "{response}");
    // The suggestion field is structured, not only embedded in the text.
    let (_, response) = raw_post(
        &addr,
        "/v1/jobs",
        r#"{"dataset":"[{A},{B}]\n[{B},{A}]","algo":"KwikSrt"}"#,
    );
    let doc = Json::parse(&response).expect("error body is JSON");
    assert_eq!(
        doc.get("suggestion").and_then(Json::as_str),
        Some("KwikSort")
    );
    // After all of that abuse the server still serves.
    let health = client.healthz().expect("healthz");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    let job = client
        .submit(&JobSubmission {
            algo: Some("Exact".to_owned()),
            ..JobSubmission::new(PAPER_EXAMPLE)
        })
        .expect("a good job still runs");
    let done = client.wait(job.id).expect("and completes");
    assert_eq!(
        done.get("report")
            .and_then(|r| r.get("score"))
            .and_then(Json::as_u64),
        Some(5)
    );
    shutdown.shutdown();
}

#[test]
fn unknown_jobs_paths_and_methods_get_clean_errors() {
    let (client, shutdown, addr) = default_server();
    match client.status(12345) {
        Err(ClientError::Status { status, .. }) => assert_eq!(status, 404),
        other => panic!("expected 404, got {other:?}"),
    }
    match client.cancel(12345) {
        Err(ClientError::Status { status, .. }) => assert_eq!(status, 404),
        other => panic!("expected 404, got {other:?}"),
    }
    let (status, _) = raw_post(&addr, "/v1/nope", "{}");
    assert_eq!(status, 404);
    // An unsupported method on a real path.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write_request(&mut stream, "PUT", "/v1/jobs", &addr, None, false).expect("send");
    let response = ClientResponse::read(stream).expect("head");
    assert_eq!(response.status, 405);
    shutdown.shutdown();
}

// ------------------------------------------------------------ registry etc.

#[test]
fn algorithms_endpoint_serves_the_shared_registry_dump() {
    let (client, shutdown, _) = default_server();
    let remote = client.algorithms().expect("algorithms");
    let local = Json::parse(&service::proto::registry_json()).expect("local dump parses");
    assert_eq!(remote, local, "one serializer, two front ends");
    shutdown.shutdown();
}

#[test]
fn healthz_reports_scheduler_shape() {
    let (client, shutdown, _) = start_server(ServerConfig {
        max_jobs: 3,
        queue_capacity: 17,
        ..ServerConfig::default()
    });
    let health = client.healthz().expect("healthz");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("max_jobs").and_then(Json::as_u64), Some(3));
    assert_eq!(
        health.get("queue_capacity").and_then(Json::as_u64),
        Some(17)
    );
    shutdown.shutdown();
}
