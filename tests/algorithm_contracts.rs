//! Contract tests every registered algorithm must satisfy, on a battery
//! of adversarial datasets: complete valid output, determinism given the
//! seed, consistency with the "produces ties" declaration, and never
//! beating a proven optimum.

use rank_aggregation_with_ties::prelude::*;
use rank_aggregation_with_ties::ragen::{MarkovGen, UniformSampler};
use rank_aggregation_with_ties::rank_core::parse::parse_ranking;

fn battery() -> Vec<(String, Dataset)> {
    let mut out = Vec::new();
    let mk = |lines: &[&str]| {
        Dataset::new(lines.iter().map(|l| parse_ranking(l).unwrap()).collect()).unwrap()
    };
    out.push((
        "paper-example".into(),
        mk(&["[{0},{3},{1,2}]", "[{0},{1,2},{3}]", "[{3},{0,2},{1}]"]),
    ));
    out.push(("single-element".into(), mk(&["[{0}]", "[{0}]"])));
    out.push((
        "two-elements-conflict".into(),
        mk(&["[{0},{1}]", "[{1},{0}]"]),
    ));
    out.push(("all-tied".into(), mk(&["[{0,1,2,3,4}]", "[{0,1,2,3,4}]"])));
    out.push((
        "unified-shape".into(),
        mk(&[
            "[{0},{1},{2,3,4,5}]",
            "[{4},{5},{0,1,2,3}]",
            "[{2},{0,1,3,4,5}]",
        ]),
    ));
    out.push((
        "reversal-pair".into(),
        mk(&["[{0},{1},{2},{3},{4},{5}]", "[{5},{4},{3},{2},{1},{0}]"]),
    ));
    let sampler = UniformSampler::new(12);
    let mut rng = rand::SeedableRng::seed_from_u64(1234);
    out.push(("uniform-12".into(), sampler.sample_dataset(12, 7, &mut rng)));
    out.push((
        "markov-similar".into(),
        MarkovGen::identity_seeded(10, 30).dataset(5, &mut rng),
    ));
    out
}

fn panel() -> Vec<Box<dyn ConsensusAlgorithm>> {
    let mut algos = paper_algorithms(3);
    algos.extend(extended_algorithms());
    algos.push(exact_algorithm());
    algos
}

#[test]
fn outputs_are_complete_valid_rankings() {
    for (name, data) in battery() {
        for algo in panel() {
            let mut ctx = AlgoContext::seeded(7);
            let consensus = algo.run(&data, &mut ctx);
            assert!(
                data.is_complete_ranking(&consensus),
                "{} on {name}: incomplete output {consensus}",
                algo.name()
            );
        }
    }
}

#[test]
fn deterministic_given_seed() {
    for (name, data) in battery() {
        for algo in panel() {
            let a = algo.run(&data, &mut AlgoContext::seeded(99));
            let b = algo.run(&data, &mut AlgoContext::seeded(99));
            assert_eq!(a, b, "{} on {name} is not seed-deterministic", algo.name());
        }
    }
}

#[test]
fn tie_free_declarations_hold() {
    // Algorithms declaring produces_ties = false must output permutations.
    for (name, data) in battery() {
        for algo in panel() {
            if !algo.produces_ties() {
                let consensus = algo.run(&data, &mut AlgoContext::seeded(5));
                assert!(
                    consensus.is_permutation(),
                    "{} on {name} declared tie-free but tied: {consensus}",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn nobody_beats_a_proven_optimum() {
    for (name, data) in battery() {
        if data.n() > 14 {
            continue;
        }
        let mut ctx = AlgoContext::seeded(1);
        let (_, optimum, proved) = ExactAlgorithm::default().solve(&data, &mut ctx);
        assert!(proved, "exact must prove on tiny instance {name}");
        for algo in panel() {
            let consensus = algo.run(&data, &mut AlgoContext::seeded(11));
            let score = kemeny_score(&consensus, &data);
            assert!(
                score >= optimum,
                "{} scored {score} below the optimum {optimum} on {name}",
                algo.name()
            );
        }
    }
}

#[test]
fn unanimous_input_is_reproduced_by_quality_algorithms() {
    // When all inputs agree, the consensus with score 0 is the input
    // itself; every quality-oriented algorithm must find it.
    let r = parse_ranking("[{2},{0,3},{1},{4}]").unwrap();
    let data = Dataset::new(vec![r.clone(), r.clone(), r.clone()]).unwrap();
    for algo in panel() {
        let name = algo.name();
        let consensus = algo.run(&data, &mut AlgoContext::seeded(3));
        let score = kemeny_score(&consensus, &data);
        match name.as_str() {
            // Permutation-only algorithms must pay for breaking {0,3}.
            "Chanas" | "ChanasBoth" | "BnB" | "KwikSortNoTies" => {
                assert!(score >= 3, "{name}: {score}")
            }
            // Positional scores may or may not resolve the tie exactly.
            "BordaCount" | "CopelandMethod" | "CopelandPairwise" | "MC4" | "MEDRank(0.5)"
            | "MEDRank(0.7)" => {}
            _ => assert_eq!(score, 0, "{name} must reproduce the unanimous input"),
        }
    }
}
