//! End-to-end tests for live dataset sessions over the wire (DESIGN.md
//! §13): dataset CRUD with versioning, jobs submitted by `dataset_id`,
//! warm-started re-solves recorded back into the session, `"follow"`
//! jobs re-emitting version-tagged incumbents across PATCHes, and
//! restart recovery of the dataset journal (with consolidation).

use service::client::Client;
use service::client::ClientError;
use service::journal::{FsyncPolicy, Journal};
use service::json::Json;
use service::proto::JobSubmission;
use service::server::{Server, ServerConfig, ShutdownHandle};
use std::path::{Path, PathBuf};
use std::time::Duration;

const PAPER_EXAMPLE: &str =
    "# the paper's §2.2 example\n[{A},{D},{B,C}]\n[{A},{B,C},{D}]\n[{D},{A,C},{B}]\n";

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rawt-datasets-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(config: ServerConfig) -> (Client, ShutdownHandle) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let shutdown = server.shutdown_handle().expect("shutdown handle");
    std::thread::spawn(move || server.serve());
    (Client::new(&addr), shutdown)
}

fn journaled_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        journal_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

fn u64_field(doc: &Json, key: &str) -> u64 {
    doc.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing {key:?} in {doc}"))
}

// ------------------------------------------------------------------ CRUD

#[test]
fn dataset_crud_versions_and_errors() {
    let (client, shutdown) = start_server(ServerConfig::default());
    // Create: version 1, the paper example's shape.
    let created = client.create_dataset("demo", PAPER_EXAMPLE).expect("PUT");
    assert_eq!(u64_field(&created, "version"), 1);
    assert_eq!(u64_field(&created, "n"), 4);
    assert_eq!(u64_field(&created, "m"), 3);
    // Duplicate create: 409.
    match client.create_dataset("demo", PAPER_EXAMPLE) {
        Err(ClientError::Status { status, .. }) => assert_eq!(status, 409),
        other => panic!("expected 409, got {other:?}"),
    }
    // Three ops in one PATCH: add (introducing a new element E), remove,
    // replace. Each bumps the version once.
    let patched = client
        .patch_dataset(
            "demo",
            concat!(
                "{\"ops\":[",
                "{\"op\":\"add\",\"ranking\":\"[{E},{A},{B,C,D}]\"},",
                "{\"op\":\"remove\",\"index\":0},",
                "{\"op\":\"replace\",\"index\":0,\"ranking\":\"[{B},{A}]\"}",
                "]}"
            ),
        )
        .expect("PATCH");
    assert_eq!(u64_field(&patched, "version"), 4);
    assert_eq!(u64_field(&patched, "applied"), 3);
    assert_eq!(u64_field(&patched, "n"), 5, "E joined the universe");
    assert_eq!(u64_field(&patched, "m"), 3);
    // GET reflects the edits; the text is the session's current rankings.
    let got = client.get_dataset("demo").expect("GET");
    assert_eq!(u64_field(&got, "version"), 4);
    let text = got.get("dataset").and_then(Json::as_str).expect("text");
    assert_eq!(text.lines().count(), 3);
    assert!(
        text.lines().next().expect("first line").contains('B'),
        "replace landed at index 0: {text}"
    );
    // A failing op mid-batch: prior ops stick, the response is 409 and
    // reports how many applied.
    let err = client.patch_dataset(
        "demo",
        "{\"ops\":[{\"op\":\"remove\",\"index\":0},{\"op\":\"remove\",\"index\":99}]}",
    );
    match err {
        Err(ClientError::Status { status, body, .. }) => {
            assert_eq!(status, 409);
            let doc = Json::parse(&body).expect("error body parses");
            assert_eq!(u64_field(&doc, "applied"), 1);
            assert_eq!(u64_field(&doc, "version"), 5);
        }
        other => panic!("expected 409, got {other:?}"),
    }
    // Structurally bad ops: 400, nothing applied.
    match client.patch_dataset("demo", "{\"ops\":[{\"op\":\"frobnicate\"}]}") {
        Err(ClientError::Status { status, .. }) => assert_eq!(status, 400),
        other => panic!("expected 400, got {other:?}"),
    }
    assert_eq!(
        u64_field(&client.get_dataset("demo").expect("GET"), "version"),
        5
    );
    // Removing down to the last ranking is refused (a session is never
    // empty): m is 1 after one more remove, then the next remove fails.
    client
        .patch_dataset("demo", "{\"ops\":[{\"op\":\"remove\",\"index\":0}]}")
        .expect("shrink to one ranking");
    match client.patch_dataset("demo", "{\"ops\":[{\"op\":\"remove\",\"index\":0}]}") {
        Err(ClientError::Status { status, .. }) => assert_eq!(status, 409),
        other => panic!("expected 409, got {other:?}"),
    }
    // Delete, then everything 404s.
    client.delete_dataset("demo").expect("DELETE");
    match client.get_dataset("demo") {
        Err(ClientError::Status { status, .. }) => assert_eq!(status, 404),
        other => panic!("expected 404, got {other:?}"),
    }
    // Bad ids are rejected before touching the table.
    match client.create_dataset("no%20good", PAPER_EXAMPLE) {
        Err(ClientError::Status { status, .. }) => assert_eq!(status, 400),
        other => panic!("expected 400, got {other:?}"),
    }
    shutdown.shutdown();
}

// ------------------------------------------------------- dataset_id jobs

/// A `dataset_id` job aggregates the live session's current rankings and
/// records its consensus back: a second job on the same dataset
/// warm-starts from it and lands on the same (optimal) score.
#[test]
fn dataset_jobs_solve_the_live_session_and_record_consensus_back() {
    let (client, shutdown) = start_server(ServerConfig::default());
    client.create_dataset("live", PAPER_EXAMPLE).expect("PUT");
    let submission = JobSubmission {
        algo: Some("Exact".into()),
        ..JobSubmission::for_dataset("live")
    };
    let job = client.submit(&submission).expect("submit by dataset_id");
    assert_eq!(job.n, 4);
    assert_eq!(job.m, 3);
    let done = client.wait(job.id).expect("job completes");
    let score = done
        .get("report")
        .and_then(|r| r.get("score"))
        .and_then(Json::as_u64)
        .expect("report score");
    assert_eq!(score, 5, "the paper example's optimal Kemeny score");
    // Round 2, warm-started from the recorded consensus (observable as:
    // still correct, still optimal — the warm path must not change the
    // answer).
    let again = client.submit(&submission).expect("second submit");
    assert_ne!(again.id, job.id);
    let done = client.wait(again.id).expect("second job completes");
    assert_eq!(
        done.get("report")
            .and_then(|r| r.get("score"))
            .and_then(Json::as_u64),
        Some(5)
    );
    assert_eq!(
        done.get("report")
            .and_then(|r| r.get("outcome"))
            .and_then(Json::as_str),
        Some("optimal")
    );
    // Submitting against a missing dataset is a 404 up front.
    match client.submit(&JobSubmission::for_dataset("ghost")) {
        Err(ClientError::Status { status, .. }) => assert_eq!(status, 404),
        other => panic!("expected 404, got {other:?}"),
    }
    shutdown.shutdown();
}

// ------------------------------------------------------------ follow jobs

/// The tentpole's live loop: a `"follow": true` job solves the dataset,
/// then a PATCH bumps the version and the job re-solves, re-emitting
/// version-tagged events. Cancelling the job ends the stream with the
/// one real terminal event.
#[test]
fn follow_jobs_resolve_again_after_a_patch_with_version_tags() {
    let (client, shutdown) = start_server(ServerConfig::default());
    client
        .create_dataset("watched", PAPER_EXAMPLE)
        .expect("PUT");
    let job = client
        .submit(&JobSubmission {
            algo: Some("BioConsert".into()),
            follow: true,
            ..JobSubmission::for_dataset("watched")
        })
        .expect("submit follow job");
    let mut events = client.events(job.id).expect("event stream");
    let mut next = || {
        events
            .next()
            .expect("stream stays open while following")
            .expect("event line parses")
    };
    // Round 1: every line (started, incumbents, the round's `resolved`
    // terminator) is tagged with dataset version 1.
    let mut saw_incumbent_v1 = false;
    loop {
        let event = next();
        let kind = event.get("event").and_then(Json::as_str).expect("kind");
        if kind == "heartbeat" {
            continue;
        }
        assert_eq!(
            u64_field(&event, "dataset_version"),
            1,
            "round-1 event missing its version tag: {event}"
        );
        assert_ne!(kind, "finished", "a follow round must not emit `finished`");
        if kind == "incumbent" {
            saw_incumbent_v1 = true;
        }
        if kind == "resolved" {
            break;
        }
    }
    assert!(saw_incumbent_v1, "round 1 published an incumbent");
    // PATCH: the version moves to 2 and the follow loop re-solves.
    client
        .patch_dataset(
            "watched",
            "{\"ops\":[{\"op\":\"add\",\"ranking\":\"[{D},{C},{B},{A}]\"}]}",
        )
        .expect("PATCH mid-follow");
    let mut saw_incumbent_v2 = false;
    loop {
        let event = next();
        let kind = event.get("event").and_then(Json::as_str).expect("kind");
        if kind == "heartbeat" {
            continue;
        }
        assert_eq!(
            u64_field(&event, "dataset_version"),
            2,
            "round-2 event tagged with the wrong version: {event}"
        );
        if kind == "incumbent" {
            saw_incumbent_v2 = true;
        }
        if kind == "resolved" {
            break;
        }
    }
    assert!(
        saw_incumbent_v2,
        "round 2 re-emitted its incumbent under the new version"
    );
    // The status document reflects the latest round's report and m.
    let status = client.status(job.id).expect("status");
    assert_eq!(u64_field(&status, "m"), 4, "live refs track the new shape");
    // DELETE ends the follow: one real terminal event, outcome cancelled.
    client.cancel(job.id).expect("cancel follow job");
    loop {
        let event = next();
        let kind = event.get("event").and_then(Json::as_str).expect("kind");
        if kind == "finished" {
            assert_eq!(
                event.get("outcome").and_then(Json::as_str),
                Some("cancelled")
            );
            break;
        }
    }
    assert!(events.next().is_none(), "the stream closed after finished");
    shutdown.shutdown();
}

/// Deleting a followed dataset also ends its follow jobs.
#[test]
fn deleting_a_dataset_ends_its_follow_jobs() {
    let (client, shutdown) = start_server(ServerConfig::default());
    client.create_dataset("doomed", PAPER_EXAMPLE).expect("PUT");
    let job = client
        .submit(&JobSubmission {
            algo: Some("Chanas".into()),
            follow: true,
            ..JobSubmission::for_dataset("doomed")
        })
        .expect("submit follow job");
    // Wait for the first round to resolve so the delete lands in the
    // follow loop's wait state.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let status = client.status(job.id).expect("status");
        if status.get("outcome").and_then(Json::as_str).is_some() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "first round never resolved: {status}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    client.delete_dataset("doomed").expect("DELETE");
    let done = client.wait(job.id).expect("follow job ends");
    assert_eq!(done.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(
        done.get("outcome").and_then(Json::as_str),
        Some("cancelled")
    );
    shutdown.shutdown();
}

// ------------------------------------------------------------- recovery

/// Datasets survive a restart at their exact version and text, and the
/// recovered journal is consolidated to a single create record (the edit
/// log does not grow across restarts).
#[test]
fn datasets_recover_across_restart_with_consolidated_journals() {
    let dir = scratch_dir("ds-recover");
    let (client, shutdown) = start_server(journaled_config(&dir));
    client
        .create_dataset("durable", PAPER_EXAMPLE)
        .expect("PUT");
    client
        .patch_dataset(
            "durable",
            concat!(
                "{\"ops\":[",
                "{\"op\":\"add\",\"ranking\":\"[{E},{A},{B,C,D}]\"},",
                "{\"op\":\"remove\",\"index\":1}",
                "]}"
            ),
        )
        .expect("PATCH");
    let before = client.get_dataset("durable").expect("GET before restart");
    assert_eq!(u64_field(&before, "version"), 3);
    // A transient neighbour deleted before the crash must stay gone.
    client.create_dataset("gone", PAPER_EXAMPLE).expect("PUT 2");
    client.delete_dataset("gone").expect("DELETE 2");
    shutdown.shutdown();

    let (client, shutdown) = start_server(journaled_config(&dir));
    let after = client.get_dataset("durable").expect("GET after restart");
    assert_eq!(u64_field(&after, "version"), 3, "version survives");
    assert_eq!(
        after.get("dataset").and_then(Json::as_str),
        before.get("dataset").and_then(Json::as_str),
        "text form survives byte-for-byte"
    );
    match client.get_dataset("gone") {
        Err(ClientError::Status { status, .. }) => assert_eq!(status, 404),
        other => panic!("expected 404 for the deleted dataset, got {other:?}"),
    }
    // Consolidation: the recovered file is a single ds-create milestone
    // at version 3 — no replayed edit tail.
    let journal_file = dir.join("dataset-durable.ndjson");
    let content = std::fs::read_to_string(&journal_file).expect("journal file");
    assert_eq!(
        content.lines().count(),
        1,
        "consolidated to one create record: {content}"
    );
    assert!(content.contains("\"version\":3"), "{content}");
    // And the recovered session keeps editing from there.
    let patched = client
        .patch_dataset(
            "durable",
            "{\"ops\":[{\"op\":\"replace\",\"index\":0,\"ranking\":\"[{A},{B}]\"}]}",
        )
        .expect("PATCH after restart");
    assert_eq!(u64_field(&patched, "version"), 4);
    shutdown.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// An interrupted `"follow"` job is re-admitted on restart against the
/// recovered dataset, at the recovered version, and keeps following.
/// The crash image is fabricated through the journal API (a graceful
/// shutdown journals a terminal `cancelled`; only a real crash leaves a
/// follow job interrupted).
#[test]
fn interrupted_follow_jobs_resume_following_after_restart() {
    let dir = scratch_dir("follow-recover");
    {
        let journal = Journal::open(&dir, FsyncPolicy::Always).expect("open");
        journal
            .begin_dataset("tracked", PAPER_EXAMPLE, 5)
            .expect("begin dataset");
        let submission = JobSubmission {
            algo: Some("BioConsert".into()),
            follow: true,
            ..JobSubmission::for_dataset("tracked")
        };
        journal
            .begin_job(0, 0, &submission.to_json())
            .expect("begin job");
        // Both writers dropped without a terminal record: the crash.
    }
    let (client, shutdown) = start_server(journaled_config(&dir));
    let got = client.get_dataset("tracked").expect("recovered dataset");
    assert_eq!(u64_field(&got, "version"), 5, "journaled version restored");
    // The job is back and still live (follow jobs never finish on their
    // own): wait for its recovered cold round, then PATCH and watch it
    // re-solve against the new shape.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while client
        .status(0)
        .expect("recovered status")
        .get("outcome")
        .and_then(Json::as_str)
        .is_none()
    {
        assert!(
            std::time::Instant::now() < deadline,
            "recovered round too slow"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let status = client.status(0).expect("recovered status");
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("running"),
        "a recovered follow job keeps following: {status}"
    );
    client
        .patch_dataset(
            "tracked",
            "{\"ops\":[{\"op\":\"add\",\"ranking\":\"[{C},{B},{A},{D}]\"}]}",
        )
        .expect("PATCH after restart");
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let status = client.status(0).expect("status");
        if status.get("m").and_then(Json::as_u64) == Some(4) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "follow loop never picked up the post-restart PATCH: {status}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    client.cancel(0).expect("cancel");
    let done = client.wait(0).expect("follow ends");
    assert_eq!(
        done.get("outcome").and_then(Json::as_str),
        Some("cancelled")
    );
    shutdown.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
